(** The line-delimited JSON wire protocol of [qspr serve].

    One request per line (schema ["qspr-job/2"]; /1 requests — the same
    shape without [deadline_ms] — are still decoded), one response per
    line (schema ["qspr-result/3"]).  Requests are pure data — circuit, fabric,
    seed, placer, budgets — and every response is a pure function of its
    request and the service configuration: per-request seeds make responses
    bit-reproducible, so identical requests are end-to-end cacheable.

    Two response sections are {e observability, not results}: the [cache]
    counters (warm-table hits vary with what ran before) and [cpu_s].
    Encoding with [~deterministic:true] omits both, leaving exactly the
    reproducible payload — the golden-file CI check and the
    shared-vs-cold byte-identity tests compare that form. *)

type circuit =
  | Builtin of string  (** a circuit from [Circuits.Qecc.all] (Table 1) *)
  | Inline_qasm of string  (** QASM source carried in the request *)

type job = {
  id : string;  (** client-chosen correlation id, echoed in the response *)
  circuit : circuit;
  fabric : string option;
      (** ASCII fabric layout; [None] = the paper's QUALE 45x85 grid *)
  seed : int;  (** root seed for all randomized placement (default 2012) *)
  placer : string;
      (** ["portfolio"] (default), ["mvfb"], ["mc"], ["sa"], ["center"]
          or ["robust"] *)
  m : int option;  (** placer width (MVFB seeds / MC runs / SA schedule) *)
  max_evals : int option;  (** deterministic engine-evaluation budget *)
  max_quote_us : float option;
      (** client-side admission ceiling: reject when the estimator quotes
          a higher predicted latency than this *)
  deadline_ms : float option;
      (** end-to-end deadline: the service arms it at admission and the
          mapper polls it at cooperative checkpoints, so a request past
          its deadline gets a typed refusal instead of running hot *)
}

val make_job :
  ?fabric:string ->
  ?seed:int ->
  ?placer:string ->
  ?m:int ->
  ?max_evals:int ->
  ?max_quote_us:float ->
  ?deadline_ms:float ->
  id:string ->
  circuit ->
  job
(** Request with the wire defaults: QUALE fabric, seed 2012, portfolio
    placer, no budgets, no deadline. *)

type cache_stats = {
  hits : int;  (** route-cache lookups served (own tables + shared) *)
  misses : int;  (** base-weight searches actually run (one Dijkstra each) *)
  shared_hits : int;  (** subset of [hits] served from the shared snapshot *)
  bound_builds : int;  (** lower-bound tables built (shared table misses) *)
  warm_paths : int;  (** snapshot path entries the job started with *)
  fabric_evictions : int;
      (** warm-state registry entries evicted (LRU) over the service
          lifetime — growth here means many distinct fabrics are competing
          for the registry cap *)
}

type attempt = { stage : string; seed : int; outcome : (float, string) result }
(** One search-stage audit entry, mirroring [Qspr.Mapper.attempt]. *)

type verdict =
  | Completed of {
      latency_us : float;
      quote_us : float;  (** the admission estimate the job was quoted *)
      lower_bound_us : float;
          (** certified admissible latency lower bound ({!Estimator.Bound})
              for the mapped instance — no legal execution can beat it *)
      bound_kind : string;  (** which bound attained it (wire encoding) *)
      optimality_gap : float option;
          (** (latency - bound) / bound when the bound is positive *)
      placement_runs : int;
      engine_evals : int;
      degraded : bool;
      direction : string;  (** ["forward"] or ["backward"] *)
      shed : string;
          (** degradation-ladder rung the job actually ran at: ["none"]
              (the requested search), ["prescreen"] (estimator-prescreened
              MVFB) or ["budgeted"] (single budgeted placement); the rung
              is also audited as a ["shed:<rung>"] attempt *)
      certificate_digest : int64;
          (** FNV-1a 64 of the canonical trace rendering
              ([Analysis.Certify]); machine-independent *)
      certificate_valid : bool;
      attempts : attempt list;
    }
  | Rejected of {
      stage : string;
          (** admission tier that refused the job: ["request"] (malformed),
              ["lint"] (severity-2 findings), ["admission"] (mapper
              context), ["budget"], ["quote"], ["deadline"] (already
              expired on arrival), ["shed"] (overload: estimate-only
              quote, [quote_us] carries it) or ["queue"] *)
      reason : string;
      quote_us : float option;  (** present when admission got that far *)
      findings : Ion_util.Json.t list;
          (** the lint report that refused the job (qspr-findings items) *)
    }
  | Failed of {
      reason : string;  (** mapper failure, [Qspr.Mapper.error_to_string] *)
      quote_us : float option;
      attempts : attempt list;
    }

type response = {
  job_id : string;
  verdict : verdict;
  cache : cache_stats option;
      (** present for jobs that reached the engine when incremental
          routing is on; omitted from deterministic encodings *)
  cpu_s : float;  (** omitted from deterministic encodings *)
  cached : bool;
      (** the response was served verbatim from the response cache;
          observability only — omitted from deterministic encodings
          (a cached response is byte-identical to a recomputed one
          there by construction) *)
}

val encode_job : job -> Ion_util.Json.t
val decode_job : Ion_util.Json.t -> (job, string) result

val job_of_line : string -> (job, string) result
(** Parse one request line (JSON parse + [decode_job]). *)

val job_to_line : job -> string
(** Compact single-line rendering of [encode_job]. *)

val encode_response : ?deterministic:bool -> response -> Ion_util.Json.t
(** [deterministic] (default false) omits the [cache] and [cpu_s]
    sections, leaving only fields that are a pure function of the job. *)

val decode_response : Ion_util.Json.t -> (response, string) result

val response_to_line : ?deterministic:bool -> response -> string
(** Compact single-line rendering of [encode_response]. *)

val response_of_line : string -> (response, string) result

val status_of : verdict -> string
(** ["ok"], ["rejected"] or ["failed"] — the wire [status] field. *)

val exit_code : response list -> int
(** Tiered like [Analysis.Finding.exit_code]: 2 when any response was
    rejected, else 1 when any failed, else 0. *)
