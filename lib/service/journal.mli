(** Crash-only request journal for [qspr serve --batch --journal].

    Append-only, line-delimited: one record per finalized response, in
    input order, flushed before the next response is computed.  Restarting
    an interrupted batch replays the journaled prefix verbatim (byte
    identity is free — the stored line {e is} the emitted line) and
    resumes mapping at the first unjournaled request, with the degradation
    ladder's slot counter reconstructed from the replayed verdicts so the
    resumed run sheds exactly as the uninterrupted run would have.

    Record grammar, one per line:
    {v qspr-journal/1 <16-hex request key> <verbatim response line> v}

    There is no recovery protocol beyond reading the file: a torn tail
    (the process died mid-append) fails to decode and is dropped, together
    with anything after it. *)

val key : string -> int64
(** FNV-1a digest of a request's canonical line — the journal's join key
    between a batch input and its recorded response. *)

type entry = {
  key : int64;  (** digest of the request line this record answers *)
  response_line : string;  (** the emitted response, byte-for-byte *)
  response : Protocol.response;  (** its decoding, for exit codes and slots *)
}

val replay : string -> entry list
(** Decode an existing journal in append order.  Missing file means an
    empty journal; decoding stops at the first torn or corrupt record. *)

val consumed_slot : Protocol.response -> bool
(** Whether this response consumed a degradation-ladder slot when first
    computed: every job that ran ([Completed]/[Failed]) plus shed and
    queue-full rejections; pre-ladder refusals (request, lint, deadline,
    budget, admission, quote) did not. *)

type t
(** An open journal, in append mode. *)

val open_append : string -> t
(** Open (creating if absent) for appending. *)

val append : t -> key:int64 -> response_line:string -> unit
(** Durably record one response: write the record and flush. *)

val close : t -> unit
