module Json = Ion_util.Json

type circuit = Builtin of string | Inline_qasm of string

type job = {
  id : string;
  circuit : circuit;
  fabric : string option;
  seed : int;
  placer : string;
  m : int option;
  max_evals : int option;
  max_quote_us : float option;
  deadline_ms : float option;
}

let default_seed = 2012
let default_placer = "portfolio"

let make_job ?fabric ?(seed = default_seed) ?(placer = default_placer) ?m ?max_evals ?max_quote_us
    ?deadline_ms ~id circuit =
  { id; circuit; fabric; seed; placer; m; max_evals; max_quote_us; deadline_ms }

type cache_stats = {
  hits : int;
  misses : int;
  shared_hits : int;
  bound_builds : int;
  warm_paths : int;
  fabric_evictions : int;
      (** warm-state registry entries evicted over the service lifetime *)
}

type attempt = { stage : string; seed : int; outcome : (float, string) result }

type verdict =
  | Completed of {
      latency_us : float;
      quote_us : float;
      lower_bound_us : float;
          (** certified admissible lower bound for the mapped instance *)
      bound_kind : string;  (** {!Estimator.Bound.kind} wire encoding *)
      optimality_gap : float option;  (** (latency - bound) / bound, when bound > 0 *)
      placement_runs : int;
      engine_evals : int;
      degraded : bool;
      direction : string;
      shed : string;
          (** degradation-ladder rung the job ran at: ["none"] (full
              request), ["prescreen"] or ["budgeted"] *)
      certificate_digest : int64;
      certificate_valid : bool;
      attempts : attempt list;
    }
  | Rejected of {
      stage : string;
      reason : string;
      quote_us : float option;
      findings : Ion_util.Json.t list;
    }
  | Failed of { reason : string; quote_us : float option; attempts : attempt list }

type response = {
  job_id : string;
  verdict : verdict;
  cache : cache_stats option;
  cpu_s : float;
  cached : bool;  (** served verbatim from the response cache *)
}

(* ------------------------------------------------------------ decoding *)

(* Field accessors returning (value, string) result so decode errors name
   the offending field instead of raising. *)

let field_str name json =
  match Json.member name json with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_str name json =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let opt_int name json =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let opt_float name json =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let req_float name json =
  match opt_float name json with
  | Ok (Some f) -> Ok f
  | Ok None -> Error (Printf.sprintf "missing field %S" name)
  | Error _ as e -> e

let req_int name json =
  match opt_int name json with
  | Ok (Some i) -> Ok i
  | Ok None -> Error (Printf.sprintf "missing field %S" name)
  | Error _ as e -> e

let opt_bool name json =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let ( let* ) = Result.bind

(* ----------------------------------------------------------------- job *)

let encode_circuit = function
  | Builtin name -> Json.Obj [ ("builtin", Json.String name) ]
  | Inline_qasm src -> Json.Obj [ ("qasm", Json.String src) ]

let decode_circuit json =
  match (Json.member "builtin" json, Json.member "qasm" json) with
  | Some (Json.String name), None -> Ok (Builtin name)
  | None, Some (Json.String src) -> Ok (Inline_qasm src)
  | Some _, Some _ -> Error "circuit: give \"builtin\" or \"qasm\", not both"
  | _ -> Error "circuit: expected an object with a \"builtin\" or \"qasm\" string"

let encode_job j =
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  Json.Obj
    ([
       ("schema", Json.String "qspr-job/2");
       ("id", Json.String j.id);
       ("circuit", encode_circuit j.circuit);
     ]
    @ opt "fabric" j.fabric (fun s -> Json.String s)
    @ [ ("seed", Json.Int j.seed); ("placer", Json.String j.placer) ]
    @ opt "m" j.m (fun i -> Json.Int i)
    @ opt "max_evals" j.max_evals (fun i -> Json.Int i)
    @ opt "max_quote_us" j.max_quote_us (fun f -> Json.Float f)
    @ opt "deadline_ms" j.deadline_ms (fun f -> Json.Float f))

let decode_job json =
  (* /1 requests (no deadline_ms) remain valid /2 requests *)
  let* _ =
    match field_str "schema" json with
    | Error _ as e -> e
    | Ok ("qspr-job/1" | "qspr-job/2") as ok -> ok
    | Ok s -> Error (Printf.sprintf "expected schema qspr-job/2, got %s" s)
  in
  let* id = field_str "id" json in
  let* circuit =
    match Json.member "circuit" json with
    | Some c -> decode_circuit c
    | None -> Error "missing field \"circuit\""
  in
  let* fabric = opt_str "fabric" json in
  let* seed = opt_int "seed" json in
  let* placer = opt_str "placer" json in
  let* m = opt_int "m" json in
  let* max_evals = opt_int "max_evals" json in
  let* max_quote_us = opt_float "max_quote_us" json in
  let* deadline_ms = opt_float "deadline_ms" json in
  Ok
    {
      id;
      circuit;
      fabric;
      seed = Option.value ~default:default_seed seed;
      placer = Option.value ~default:default_placer placer;
      m;
      max_evals;
      max_quote_us;
      deadline_ms;
    }

let job_of_line line =
  match Json.parse line with Error e -> Error ("bad request JSON: " ^ e) | Ok j -> decode_job j

let job_to_line j = Json.to_string ~indent:false (encode_job j)

(* ------------------------------------------------------------ response *)

let status_of = function Completed _ -> "ok" | Rejected _ -> "rejected" | Failed _ -> "failed"

let encode_attempt a =
  Json.Obj
    ([ ("stage", Json.String a.stage); ("seed", Json.Int a.seed) ]
    @
    match a.outcome with
    | Ok latency -> [ ("ok", Json.Float latency) ]
    | Error e -> [ ("error", Json.String e) ])

let decode_attempt json =
  let* stage = field_str "stage" json in
  let* seed = req_int "seed" json in
  let* outcome =
    match (Json.member "ok" json, Json.member "error" json) with
    | Some _, None ->
        let* l = req_float "ok" json in
        Ok (Ok l)
    | None, Some (Json.String e) -> Ok (Error e)
    | _ -> Error "attempt: expected exactly one of \"ok\" or \"error\""
  in
  Ok { stage; seed; outcome }

let encode_cache c =
  Json.Obj
    [
      ("hits", Json.Int c.hits);
      ("misses", Json.Int c.misses);
      ("shared_hits", Json.Int c.shared_hits);
      ("bound_builds", Json.Int c.bound_builds);
      ("warm_paths", Json.Int c.warm_paths);
      ("fabric_evictions", Json.Int c.fabric_evictions);
    ]

let decode_cache json =
  let* hits = req_int "hits" json in
  let* misses = req_int "misses" json in
  let* shared_hits = req_int "shared_hits" json in
  let* bound_builds = req_int "bound_builds" json in
  let* warm_paths = req_int "warm_paths" json in
  let* fabric_evictions = opt_int "fabric_evictions" json in
  Ok
    {
      hits;
      misses;
      shared_hits;
      bound_builds;
      warm_paths;
      fabric_evictions = Option.value ~default:0 fabric_evictions;
    }

let digest_to_string d = Printf.sprintf "%016Lx" d

let digest_of_string s =
  match Scanf.sscanf_opt s "%Lx%!" Fun.id with
  | Some d -> Ok d
  | None -> Error (Printf.sprintf "bad certificate digest %S" s)

let encode_response ?(deterministic = false) r =
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  let verdict_fields =
    match r.verdict with
    | Completed c ->
        [
          ("quote_us", Json.Float c.quote_us);
          ("latency_us", Json.Float c.latency_us);
          ("lower_bound_us", Json.Float c.lower_bound_us);
          ("bound_kind", Json.String c.bound_kind);
          ( "optimality_gap",
            match c.optimality_gap with Some g -> Json.Float g | None -> Json.Null );
          ("placement_runs", Json.Int c.placement_runs);
          ("engine_evals", Json.Int c.engine_evals);
          ("degraded", Json.Bool c.degraded);
          ("direction", Json.String c.direction);
          ("shed", Json.String c.shed);
          ( "certificate",
            Json.Obj
              [
                ("digest", Json.String (digest_to_string c.certificate_digest));
                ("valid", Json.Bool c.certificate_valid);
              ] );
          ("attempts", Json.List (List.map encode_attempt c.attempts));
        ]
    | Rejected rj ->
        [ ("stage", Json.String rj.stage); ("reason", Json.String rj.reason) ]
        @ opt "quote_us" rj.quote_us (fun f -> Json.Float f)
        @ [ ("findings", Json.List rj.findings) ]
    | Failed f ->
        [ ("reason", Json.String f.reason) ]
        @ opt "quote_us" f.quote_us (fun x -> Json.Float x)
        @ [ ("attempts", Json.List (List.map encode_attempt f.attempts)) ]
  in
  let observability =
    if deterministic then []
    else
      (match r.cache with None -> [] | Some c -> [ ("cache", encode_cache c) ])
      @ [ ("cpu_s", Json.Float r.cpu_s) ]
      @ (if r.cached then [ ("cached", Json.Bool true) ] else [])
  in
  Json.Obj
    ([
       ("schema", Json.String "qspr-result/3");
       ("id", Json.String r.job_id);
       ("status", Json.String (status_of r.verdict));
     ]
    @ verdict_fields @ observability)

let decode_list name f json =
  match Json.member name json with
  | Some (Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = f item in
          Ok (v :: acc))
        (Ok []) items
      |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "field %S must be a list" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let decode_response json =
  (* accept /1 (no bound fields, defaulted below) and /2 *)
  let* _ =
    match field_str "schema" json with
    | Error _ as e -> e
    | Ok ("qspr-result/1" | "qspr-result/2" | "qspr-result/3") as ok -> ok
    | Ok s -> Error (Printf.sprintf "expected schema qspr-result/3, got %s" s)
  in
  let* job_id = field_str "id" json in
  let* status = field_str "status" json in
  let* verdict =
    match status with
    | "ok" ->
        let* quote_us = req_float "quote_us" json in
        let* latency_us = req_float "latency_us" json in
        let* lower_bound_us = opt_float "lower_bound_us" json in
        let* bound_kind = opt_str "bound_kind" json in
        let* optimality_gap = opt_float "optimality_gap" json in
        let* placement_runs = req_int "placement_runs" json in
        let* engine_evals = req_int "engine_evals" json in
        let* degraded = opt_bool "degraded" json in
        let* direction = field_str "direction" json in
        let* shed = opt_str "shed" json in
        let* cert =
          match Json.member "certificate" json with
          | Some c ->
              let* digest_s = field_str "digest" c in
              let* digest = digest_of_string digest_s in
              let* valid = opt_bool "valid" c in
              Ok (digest, Option.value ~default:false valid)
          | None -> Error "missing field \"certificate\""
        in
        let* attempts = decode_list "attempts" decode_attempt json in
        Ok
          (Completed
             {
               latency_us;
               quote_us;
               lower_bound_us = Option.value ~default:0.0 lower_bound_us;
               bound_kind = Option.value ~default:"critical-path" bound_kind;
               optimality_gap;
               placement_runs;
               engine_evals;
               degraded = Option.value ~default:false degraded;
               direction;
               shed = Option.value ~default:"none" shed;
               certificate_digest = fst cert;
               certificate_valid = snd cert;
               attempts;
             })
    | "rejected" ->
        let* stage = field_str "stage" json in
        let* reason = field_str "reason" json in
        let* quote_us = opt_float "quote_us" json in
        let* findings = decode_list "findings" (fun f -> Ok f) json in
        Ok (Rejected { stage; reason; quote_us; findings })
    | "failed" ->
        let* reason = field_str "reason" json in
        let* quote_us = opt_float "quote_us" json in
        let* attempts = decode_list "attempts" decode_attempt json in
        Ok (Failed { reason; quote_us; attempts })
    | other -> Error (Printf.sprintf "unknown status %S" other)
  in
  let* cache =
    match Json.member "cache" json with
    | None | Some Json.Null -> Ok None
    | Some c -> Result.map Option.some (decode_cache c)
  in
  let* cpu_s = opt_float "cpu_s" json in
  let* cached = opt_bool "cached" json in
  Ok
    {
      job_id;
      verdict;
      cache;
      cpu_s = Option.value ~default:0.0 cpu_s;
      cached = Option.value ~default:false cached;
    }

let response_to_line ?deterministic r = Json.to_string ~indent:false (encode_response ?deterministic r)

let response_of_line line =
  match Json.parse line with
  | Error e -> Error ("bad response JSON: " ^ e)
  | Ok j -> decode_response j

let exit_code responses =
  List.fold_left
    (fun acc r ->
      Int.max acc (match r.verdict with Completed _ -> 0 | Failed _ -> 1 | Rejected _ -> 2))
    0 responses
