(* Per-domain warm arenas for service jobs.

   A worker domain's hot-path scratch — the engine's trace builder
   (Micro.Builder), the Dijkstra workspace inside each job's route cache,
   and the estimator's event-driven scratch — is domain-local and grows
   monotonically, so after one job the warm path allocates only the
   materialized outputs.  Domain pools, however, spawn fresh domains per
   batch, and a fresh domain starts with empty arenas: its first job pays
   the doubling-growth allocations all over again.

   This module keeps process-global high-watermarks of the arena sizes
   jobs actually needed, so [prewarm] (called at the top of every worker
   job) sizes a fresh domain's arenas once, up front.  Watermarks only
   ever grow and carry no job data, so prewarming is invisible to results,
   counters and digests — it moves allocations, never behavior. *)

(* largest trace (in commands) any completed job has built *)
let trace_hwm = Atomic.make 0

let rec raise_to cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then raise_to cell v

let prewarm ctx =
  let b = Router.Micro.Builder.domain_local () in
  Router.Micro.Builder.reserve b (Atomic.get trace_hwm);
  let comp = Qspr.Mapper.component ctx in
  let program = Qspr.Mapper.program ctx in
  Estimator.Model.warm_scratch
    ~num_qubits:(Qasm.Program.num_qubits program)
    ~num_traps:(Array.length (Fabric.Component.traps comp))
    ~num_instrs:(Qasm.Program.num_instrs program)

let record () =
  raise_to trace_hwm (Router.Micro.Builder.capacity (Router.Micro.Builder.domain_local ()))
