(** Per-domain warm arenas for service jobs.

    Worker domains reuse domain-local scratch (trace builder, route
    workspace, estimator scratch), but a domain pool spawns fresh domains
    per batch whose arenas start empty.  [prewarm]/[record] carry the
    arena sizes across batches through process-global high-watermarks:
    the scheduler calls [prewarm] before mapping a job so a fresh domain
    sizes its arenas once, and [record] after, to raise the watermarks.

    Watermarks hold sizes only — never job data — so prewarming cannot
    change results, cache counters or certificate digests.  See
    [doc/memory.md] for the arena lifetime rules. *)

val prewarm : Qspr.Mapper.t -> unit
(** Size this domain's trace builder to the recorded high-watermark and
    the estimator scratch to the job's instance dimensions. *)

val record : unit -> unit
(** Raise the high-watermarks to this domain's current arena sizes;
    call after a job completes on the worker. *)
