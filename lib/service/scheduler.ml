module Route_cache = Router.Route_cache
module Clock = Ion_util.Clock
module Lru = Ion_util.Lru

module type SERVICE = sig
  type t

  type limits = {
    jobs : int;
    max_pending : int;
    max_quote_us : float option;
    max_evals : int option;
    shed_start : int option;
    max_fabrics : int;
    response_cache : int;
    response_ttl_s : float option;
  }

  val default_limits : limits
  val create : ?limits:limits -> ?config:Qspr.Config.t -> unit -> t
  val submit : t -> Protocol.job -> Protocol.response

  val run_batch :
    ?first_slot:int ->
    ?on_result:(Protocol.job -> Protocol.response -> unit) ->
    t ->
    Protocol.job list ->
    Protocol.response list

  val handle_line : ?deterministic:bool -> t -> string -> string

  type rung = Full | Prescreen | Budgeted | Quote_only | Refused

  val rung_of : limits -> slot:int -> rung
  val rung_name : rung -> string

  type stats = {
    fabrics : int;
    fabric_evictions : int;
    shared_paths : int;
    shared_bounds : int;
    response_hits : int;
    response_evictions : int;
    completed : int;
    rejected : int;
    failed : int;
    shed : int;
  }

  val stats : t -> stats
end

type limits = {
  jobs : int;
  max_pending : int;
  max_quote_us : float option;
  max_evals : int option;
  shed_start : int option;
  max_fabrics : int;
  response_cache : int;
  response_ttl_s : float option;
}

let default_limits =
  {
    jobs = 1;
    max_pending = 64;
    max_quote_us = None;
    max_evals = None;
    shed_start = None;
    max_fabrics = 8;
    response_cache = 256;
    response_ttl_s = None;
  }

(* ------------------------------------------------------- degradation ladder *)

(* The overload ladder: queue depth (the admission slot) picks how much
   search a job gets.  Below [shed_start] (default half of [max_pending])
   jobs run their full request; the remaining headroom is split in three
   even rungs of progressively cheaper service, and only past
   [max_pending] is a job refused outright.  The rung is a pure function
   of (limits, slot) and slots are assigned sequentially on the main
   domain, so shedding decisions are bit-identical at any [jobs] width. *)
type rung = Full | Prescreen | Budgeted | Quote_only | Refused

let rung_name = function
  | Full -> "none"
  | Prescreen -> "prescreen"
  | Budgeted -> "budgeted"
  | Quote_only -> "quote"
  | Refused -> "refused"

let rung_of limits ~slot =
  let p = max 1 limits.max_pending in
  let s =
    match limits.shed_start with
    | Some s -> min (max 0 s) p
    | None -> max 1 (p / 2)
  in
  if slot >= p then Refused
  else if slot < s then Full
  else begin
    let third = max 1 ((p - s + 2) / 3) in
    if slot < s + third then Prescreen else if slot < s + (2 * third) then Budgeted else Quote_only
  end

(* Per-fabric shared state: everything here is built once, read by every
   job on the fabric.  [comp]/[graph]/[distance] are immutable after build;
   [snapshot] is replaced (never mutated) between waves on the main domain. *)
type fabric_entry = {
  layout : Fabric.Layout.t;
  comp : Fabric.Component.t;
  graph : Fabric.Graph.t;
  distance : Estimator.Distance.t;
  mutable snapshot : Route_cache.snapshot option;
}

type t = {
  limits : limits;
  base : Qspr.Config.t;
  fabrics : (int64, fabric_entry) Lru.t;
      (* warm-state registry, LRU-capped: under many distinct fabrics the
         least-recently-served fabric's tables are dropped, not leaked.
         Jobs in flight keep their entry alive through their own reference;
         an evicted entry simply stops receiving warm folds. *)
  responses : (int64, string * Protocol.response) Lru.t;
      (* response cache keyed on FNV-1a of the job's deterministic
         encoding; the stored encoding is compared on hit so a digest
         collision can never serve the wrong job's result *)
  mutable completed : int;
  mutable rejected : int;
  mutable failed : int;
  mutable shed : int;
}

let create ?(limits = default_limits) ?(config = Qspr.Config.default) () =
  (* wall-clock budgets are nondeterministic; strip them so every response
     is a pure function of its job.  Each job runs its placer in one pool
     slot — parallelism is across jobs — so the per-job fan-out is 1. *)
  let base =
    Qspr.Config.with_jobs 1
      {
        config with
        Qspr.Config.budget = { config.Qspr.Config.budget with Qspr.Config.wall_s = None };
      }
  in
  {
    limits;
    base;
    fabrics = Lru.create ~cap:(max 0 limits.max_fabrics) ();
    responses =
      Lru.create ?ttl_s:limits.response_ttl_s ~cap:(max 0 limits.response_cache) ();
    completed = 0;
    rejected = 0;
    failed = 0;
    shed = 0;
  }

(* ------------------------------------------------------------ admission *)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* Fabric digest: canonical ASCII rendering plus the base-weight turn cost
   (the only base-weight parameter the cached tables depend on — channel
   and junction capacities shape live weights, not base ones). *)
let fabric_key t layout =
  let tc = Router.Timing.turn_cost_in_moves t.base.Qspr.Config.timing in
  fnv1a64 (Printf.sprintf "%.17g|%s" tc (Fabric.Layout.to_ascii layout))

let allowed_placers = [ "portfolio"; "mvfb"; "mc"; "sa"; "center"; "robust" ]

let resolve_circuit ~id = function
  | Protocol.Builtin name -> (
      match List.assoc_opt name (Circuits.Qecc.all ()) with
      | Some p -> Ok p
      | None ->
          Error
            (Qasm.Parser.error_of_string
               (Printf.sprintf "unknown builtin circuit %s (known: %s)" name
                  (String.concat ", " (List.map fst (Circuits.Qecc.all ()))))))
  | Protocol.Inline_qasm src -> Qasm.Parser.parse_located ~name:id src

let resolve_fabric = function
  | None -> Ok (Fabric.Layout.quale_45x85 ())
  | Some src -> Fabric.Layout.parse src

let entry_for t layout =
  let key = fabric_key t layout in
  let build () =
    match Fabric.Component.extract layout with
    | Error e -> Error e
    | Ok comp ->
        let graph = Fabric.Graph.build comp in
        let distance =
          Estimator.Distance.build graph
            ~turn_cost:(Router.Timing.turn_cost_in_moves t.base.Qspr.Config.timing)
        in
        Ok { layout; comp; graph; distance; snapshot = None }
  in
  match Lru.find t.fabrics key with
  | Some e when Fabric.Layout.equal e.layout layout -> Ok e
  | Some _ ->
      (* digest collision with a different layout: run cold, don't register *)
      build ()
  | None -> (
      match build () with
      | Error _ as e -> e
      | Ok e ->
          Lru.put t.fabrics key e;
          Ok e)

(* A job that cleared admission: everything a worker domain needs, plus the
   private route cache whose counters become the response's cache section. *)
type prepared = {
  p_job : Protocol.job;
  p_entry : fabric_entry;
  p_ctx : Qspr.Mapper.t;
  p_cache : Route_cache.t;
  p_quote : float;
  p_rung : rung;
  mutable p_warm_paths : int;
}

let reject ?quote ?(findings = []) ~stage reason =
  Protocol.Rejected { stage; reason; quote_us = quote; findings }

type admission =
  | Run of prepared
  | Refuse of Protocol.verdict
  | Hit of Protocol.response  (** served verbatim from the response cache *)

let job_config t ?deadline (job : Protocol.job) =
  let base = t.base in
  let max_evals =
    match job.Protocol.max_evals with Some _ as e -> e | None -> t.limits.max_evals
  in
  let base = Qspr.Config.with_seed job.Protocol.seed base in
  let base = match job.Protocol.m with Some m -> Qspr.Config.with_m m base | None -> base in
  Qspr.Config.with_budget { Qspr.Config.wall_s = None; max_evals; deadline } base

(* Response-cache key: the job's canonical single-line encoding (the
   encoding is a pure function of the record, field order fixed).  Only
   full-service completions are cached — shed rungs answer for a load
   level, not for the job. *)
let response_key job =
  let line = Protocol.job_to_line job in
  (fnv1a64 line, line)

let cache_lookup t job =
  if Lru.capacity t.responses = 0 then None
  else begin
    let key, line = response_key job in
    match Lru.find t.responses key with
    | Some (stored_line, r) when String.equal stored_line line ->
        Some { r with Protocol.cached = true }
    | Some _ | None -> None
  end

let cache_store t job response =
  if Lru.capacity t.responses > 0 then begin
    match response.Protocol.verdict with
    | Protocol.Completed c when c.shed = "none" ->
        let key, line = response_key job in
        Lru.put t.responses key
          (line, { response with Protocol.cache = None; cpu_s = 0.0; cached = false })
    | _ -> ()
  end

(* [slot] is shared mutable admission state for one submission: it counts
   every job that reached the ladder decision point (so shedding decisions
   depend only on upstream admission order, never on worker timing), and
   is advanced here exactly once per such job. *)
let admit t ~slot (job : Protocol.job) =
  if not (List.mem job.Protocol.placer allowed_placers) then
    Refuse
      (reject ~stage:"request"
         (Printf.sprintf "unknown placer %s (%s)" job.Protocol.placer
            (String.concat "|" allowed_placers)))
  else begin
    (* the deadline tier: arm the request's end-to-end budget first — a
       request that arrives already out of time is refused before any
       lint/estimation work is spent on it *)
    let deadline = Option.map Clock.after_ms job.Protocol.deadline_ms in
    match deadline with
    | Some d when Clock.expired d ->
        Refuse
          (reject ~stage:"deadline"
             (Printf.sprintf "deadline of %.1f ms expired before admission" (Clock.budget_ms d)))
    | _ ->
        let config = job_config t ?deadline job in
        let program_r = resolve_circuit ~id:job.Protocol.id job.Protocol.circuit in
        let fabric_r = resolve_fabric job.Protocol.fabric in
        (* mandatory lint ingress: parse failures and severity-2 findings both
           land here as structured rejections, never mapper exceptions *)
        let findings = Analysis.Registry.lint ~program:program_r ~fabric:fabric_r ~config () in
        if not (Analysis.Finding.is_clean findings) then
          Refuse
            (reject ~stage:"lint"
               ~findings:(List.map Analysis.Finding.to_json findings)
               (Printf.sprintf "%d lint error(s) (run `qspr lint` for the report)"
                  (Analysis.Finding.count Analysis.Finding.Error findings)))
        else
          match (program_r, fabric_r) with
          | Error e, _ ->
              (* unreachable while parse failures lint as errors; stay total *)
              Refuse (reject ~stage:"lint" (Qasm.Parser.error_to_string e))
          | _, Error e -> Refuse (reject ~stage:"lint" e)
          | Ok program, Ok layout -> (
              match (job.Protocol.max_evals, t.limits.max_evals) with
              | Some req, Some cap when req > cap ->
                  Refuse
                    (reject ~stage:"budget"
                       (Printf.sprintf "requested max_evals %d exceeds the service ceiling %d" req
                          cap))
              | _ -> (
                  match entry_for t layout with
                  | Error e -> Refuse (reject ~stage:"admission" e)
                  | Ok entry -> (
                      let cache = Route_cache.create () in
                      match
                        Qspr.Mapper.create ~fabric:layout ~config
                          ~prebuilt:(entry.comp, entry.graph) ~distance:entry.distance
                          ~route_cache:cache program
                      with
                      | Error e -> Refuse (reject ~stage:"admission" e)
                      | Ok ctx ->
                          (* the quote: estimator latency of the deterministic
                             center placement — no routing, ~89x cheaper *)
                          let quote =
                            Qspr.Mapper.estimate ctx
                              (Placer.Center.place entry.comp
                                 ~num_qubits:(Qasm.Program.num_qubits program))
                          in
                          if not (Float.is_finite quote) then
                            Refuse
                              (reject ~stage:"quote"
                                 "estimator quote is infinite: interacting qubits are unreachable")
                          else
                            let ceiling =
                              match (t.limits.max_quote_us, job.Protocol.max_quote_us) with
                              | Some a, Some b -> Some (Float.min a b)
                              | (Some _ as c), None | None, (Some _ as c) -> c
                              | None, None -> None
                            in
                            (match ceiling with
                            | Some cap when quote > cap ->
                                Refuse
                                  (reject ~stage:"quote" ~quote
                                     (Printf.sprintf
                                        "quoted %.1f us exceeds the admission ceiling %.1f us"
                                        quote cap))
                            | _ ->
                                let rung = rung_of t.limits ~slot:!slot in
                                incr slot;
                                (match rung with
                                | Refused ->
                                    Refuse
                                      (reject ~stage:"queue" ~quote
                                         (Printf.sprintf
                                            "queue full: %d job(s) already admitted \
                                             (max_pending=%d)"
                                            (!slot - 1) t.limits.max_pending))
                                | Quote_only ->
                                    t.shed <- t.shed + 1;
                                    Refuse
                                      (reject ~stage:"shed" ~quote
                                         (Printf.sprintf
                                            "overload: served an estimate-only quote of %.1f us \
                                             (ladder rung quote, slot %d)"
                                            quote (!slot - 1)))
                                | (Full | Prescreen | Budgeted) as rung ->
                                    if rung <> Full then t.shed <- t.shed + 1;
                                    Run
                                      {
                                        p_job = job;
                                        p_entry = entry;
                                        p_ctx = ctx;
                                        p_cache = cache;
                                        p_quote = quote;
                                        p_rung = rung;
                                        p_warm_paths = 0;
                                      })))))
  end

(* ------------------------------------------------------------ execution *)

let attempts_of = function
  | [] -> []
  | attempts ->
      List.map
        (fun (a : Qspr.Mapper.attempt) ->
          {
            Protocol.stage = a.Qspr.Mapper.stage;
            seed = a.Qspr.Mapper.seed;
            outcome = Result.map_error Qspr.Mapper.error_to_string a.Qspr.Mapper.outcome;
          })
        attempts

(* What each ladder rung actually runs.  [Full] honors the request;
   [Prescreen] forces estimator-prescreened MVFB (every candidate is
   estimated, only the top 2 are routed — the cheap end of the placer
   spectrum that still searches); [Budgeted] routes exactly one
   deterministic center placement. *)
let map_with_placer (job : Protocol.job) rung ctx =
  match rung with
  | Prescreen -> Qspr.Mapper.map_mvfb ~jobs:1 ~prescreen_k:2 ctx
  | Budgeted -> Qspr.Mapper.map_center ctx
  | Full | Quote_only | Refused -> (
      match job.Protocol.placer with
      | "mvfb" -> Qspr.Mapper.map_mvfb ~jobs:1 ctx
      | "mc" ->
          Qspr.Mapper.map_monte_carlo ~runs:(Qspr.Mapper.config ctx).Qspr.Config.m ~jobs:1 ctx
      | "sa" -> Qspr.Mapper.map_annealing ~jobs:1 ctx
      | "center" -> Qspr.Mapper.map_center ctx
      | "robust" -> Qspr.Mapper.map_robust ~jobs:1 ctx
      | _ -> Qspr.Mapper.map_portfolio ~jobs:1 ctx)

(* Runs on a worker domain: map, certify, return pure data.  The private
   route cache's counters are read on the main domain after the wave.
   [Arena.prewarm] sizes the domain's trace builder and estimator scratch
   up front so even a fresh pool domain maps its first job warm. *)
let run_one p =
  let t0 = Sys.time () in
  Arena.prewarm p.p_ctx;
  let shed_audit =
    match p.p_rung with
    | Full | Quote_only | Refused -> []
    | rung ->
        (* the ladder step is part of the response's audit trail: the rung
           and the quote that admitted the job at that rung *)
        [
          {
            Protocol.stage = "shed:" ^ rung_name rung;
            seed = p.p_job.Protocol.seed;
            outcome = Ok p.p_quote;
          };
        ]
  in
  let verdict =
    match map_with_placer p.p_job p.p_rung p.p_ctx with
    | Error e ->
        Protocol.Failed
          {
            reason = Qspr.Mapper.error_to_string e;
            quote_us = Some p.p_quote;
            attempts = shed_audit;
          }
    | Ok sol ->
        let cert = Analysis.Certify.of_solution p.p_ctx sol in
        Protocol.Completed
          {
            latency_us = sol.Qspr.Mapper.latency;
            quote_us = p.p_quote;
            lower_bound_us = sol.Qspr.Mapper.lower_bound_us;
            bound_kind = Estimator.Bound.kind_to_string sol.Qspr.Mapper.bound_kind;
            optimality_gap =
              (if sol.Qspr.Mapper.lower_bound_us > 0.0 then
                 Some
                   ((sol.Qspr.Mapper.latency -. sol.Qspr.Mapper.lower_bound_us)
                   /. sol.Qspr.Mapper.lower_bound_us)
               else None);
            placement_runs = sol.Qspr.Mapper.placement_runs;
            engine_evals = sol.Qspr.Mapper.engine_evals;
            degraded = sol.Qspr.Mapper.degraded || p.p_rung <> Full;
            direction =
              (match sol.Qspr.Mapper.direction with
              | Placer.Mvfb.Forward -> "forward"
              | Placer.Mvfb.Backward -> "backward");
            shed = rung_name p.p_rung;
            certificate_digest = cert.Analysis.Certify.digest;
            certificate_valid = cert.Analysis.Certify.valid;
            attempts = shed_audit @ attempts_of sol.Qspr.Mapper.attempts;
          }
  in
  Arena.record ();
  (verdict, Sys.time () -. t0)

let cache_stats_of t p =
  if not t.base.Qspr.Config.incremental_routing then None
  else
    Some
      {
        Protocol.hits = Route_cache.hits p.p_cache;
        misses = Route_cache.misses p.p_cache;
        shared_hits = Route_cache.shared_hits p.p_cache;
        bound_builds = Route_cache.bound_builds p.p_cache;
        warm_paths = p.p_warm_paths;
        fabric_evictions = Lru.evictions t.fabrics;
      }

let count_verdict t = function
  | Protocol.Completed _ -> t.completed <- t.completed + 1
  | Protocol.Rejected _ -> t.rejected <- t.rejected + 1
  | Protocol.Failed _ -> t.failed <- t.failed + 1

let run_batch ?(first_slot = 0) ?on_result t jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let slot = ref first_slot in
  let admissions =
    Array.map
      (fun job ->
        match cache_lookup t job with
        | Some r -> Hit r
        | None -> admit t ~slot job)
      jobs
  in
  let admitted = ref [] and admitted_inputs = ref [] in
  Array.iteri
    (fun i a ->
      match a with
      | Run p ->
          admitted := p :: !admitted;
          admitted_inputs := i :: !admitted_inputs
      | Refuse _ | Hit _ -> ())
    admissions;
  let admitted = Array.of_list (List.rev !admitted) in
  let admitted_inputs = Array.of_list (List.rev !admitted_inputs) in
  (* responses materialize out of order (refusals instantly, mapped jobs per
     wave); [flush] hands them to [on_result] strictly in input order, so a
     journaling caller can persist-and-emit incrementally — crash-only: kill
     the process mid-batch and every already-flushed response survives *)
  let responses : Protocol.response option array = Array.make n None in
  let next = ref 0 in
  let flush () =
    while
      !next < n
      &&
      match responses.(!next) with
      | Some r ->
          (match on_result with Some f -> f jobs.(!next) r | None -> ());
          true
      | None -> false
    do
      incr next
    done
  in
  let finalize i response =
    count_verdict t response.Protocol.verdict;
    responses.(i) <- Some response
  in
  Array.iteri
    (fun i a ->
      match a with
      | Refuse verdict ->
          finalize i
            {
              Protocol.job_id = jobs.(i).Protocol.id;
              verdict;
              cache = None;
              cpu_s = 0.0;
              cached = false;
            }
      | Hit r -> finalize i r
      | Run _ -> ())
    admissions;
  flush ();
  let width = Int.max 1 t.limits.jobs in
  Ion_util.Domain_pool.with_pool ~jobs:width (fun pool ->
      let k = ref 0 in
      while !k < Array.length admitted do
        let wave = Array.sub admitted !k (Int.min width (Array.length admitted - !k)) in
        (* attach the current per-fabric snapshots on the main domain; the
           pool's queue mutex publishes them to the worker domains *)
        Array.iter
          (fun p ->
            match p.p_entry.snapshot with
            | Some s ->
                p.p_warm_paths <- Route_cache.snapshot_paths s;
                Route_cache.attach p.p_cache s
            | None -> ())
          wave;
        let outs =
          Ion_util.Domain_pool.map_seeded ~pool ~jobs:width ~seed:t.base.Qspr.Config.rng_seed
            (fun ~index:_ ~rng:_ p -> run_one p)
            wave
        in
        (* fold this wave's private caches back into the per-fabric
           snapshots, in wave order, so the next wave starts warmer *)
        if t.base.Qspr.Config.incremental_routing then
          Array.iter
            (fun p ->
              (match p.p_entry.snapshot with
              | Some s -> Route_cache.attach p.p_cache s
              | None -> Route_cache.for_graph p.p_cache p.p_entry.graph);
              p.p_entry.snapshot <- Some (Route_cache.freeze p.p_cache))
            wave;
        Array.iteri
          (fun j (verdict, cpu_s) ->
            let p = wave.(j) in
            let i = admitted_inputs.(!k + j) in
            let response =
              {
                Protocol.job_id = jobs.(i).Protocol.id;
                verdict;
                cache = cache_stats_of t p;
                cpu_s;
                cached = false;
              }
            in
            cache_store t jobs.(i) response;
            finalize i response)
          outs;
        flush ();
        k := !k + Array.length wave
      done);
  flush ();
  Array.to_list (Array.map Option.get responses)

let submit t job =
  match run_batch t [ job ] with [ r ] -> r | _ -> assert false

let handle_line ?deterministic t line =
  match Protocol.job_of_line line with
  | Error msg ->
      let response =
        {
          Protocol.job_id = "?";
          verdict = reject ~stage:"request" msg;
          cache = None;
          cpu_s = 0.0;
          cached = false;
        }
      in
      count_verdict t response.Protocol.verdict;
      Protocol.response_to_line ?deterministic response
  | Ok job -> Protocol.response_to_line ?deterministic (submit t job)

type stats = {
  fabrics : int;
  fabric_evictions : int;
  shared_paths : int;
  shared_bounds : int;
  response_hits : int;
  response_evictions : int;
  completed : int;
  rejected : int;
  failed : int;
  shed : int;
}

let stats (t : t) =
  let shared_paths = ref 0 and shared_bounds = ref 0 in
  Lru.iter
    (fun (_, e) ->
      match e.snapshot with
      | Some s ->
          shared_paths := !shared_paths + Route_cache.snapshot_paths s;
          shared_bounds := !shared_bounds + Route_cache.snapshot_bounds s
      | None -> ())
    t.fabrics;
  {
    fabrics = Lru.length t.fabrics;
    fabric_evictions = Lru.evictions t.fabrics;
    shared_paths = !shared_paths;
    shared_bounds = !shared_bounds;
    response_hits = Lru.hits t.responses;
    response_evictions = Lru.evictions t.responses + Lru.expirations t.responses;
    completed = t.completed;
    rejected = t.rejected;
    failed = t.failed;
    shed = t.shed;
  }
