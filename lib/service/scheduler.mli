(** The mapping-as-a-service engine behind [qspr serve].

    One contract ({!SERVICE}) drives the CLI daemon, the batch runner, the
    tests and the throughput bench, so every consumer exercises the
    identical admission, scheduling and cache-sharing machinery.

    {2 Admission control}

    Every job passes the same ingress tiers, in order: request validation
    (placer name), the {b deadline} tier (a request whose end-to-end
    [deadline_ms] has already expired on arrival is refused before any
    work is spent on it), {b lint} ([Analysis.Registry.lint] over the
    program and fabric — severity-2 findings produce a structured
    rejection instead of a mapper exception), mapper-context construction,
    the {b budget} tier (a requested [max_evals] above the service ceiling
    is refused), the {b quote} tier (the LEQA-style estimator predicts the
    latency of a deterministic center placement — ~89x cheaper than
    routing — and the job is refused when the quote exceeds the service's
    or the client's ceiling), and the {b ladder} tier (below).

    {2 The degradation ladder}

    Under overload the service degrades before it refuses.  The admission
    slot — the count of jobs that already reached the ladder decision in
    this submission — picks the service level:

    - below [shed_start] (default [max_pending / 2]): {b full} service,
      the requested placer with the requested budgets;
    - the headroom between [shed_start] and [max_pending] is split into
      three equal rungs: {b prescreen} (estimator-prescreened MVFB routing
      only the top 2 candidates), {b budgeted} (a single deterministic
      routed center placement), and {b quote} (an estimate-only rejection
      carrying the quote, stage ["shed"]);
    - at [max_pending] and beyond: refusal, stage ["queue"].

    Executed shed rungs are visible in the response: [Completed.shed]
    names the rung, a synthetic ["shed:<rung>"] attempt opens the audit
    trail, and [degraded] is forced on.  The rung is a pure function of
    (limits, slot) and slots are assigned sequentially on the main domain,
    so shedding is bit-identical at any [jobs] width.

    {2 Deadlines}

    A job's [deadline_ms] is armed on the monotonized service clock at
    admission and carried in the mapper budget
    ({!Qspr.Config.budget.deadline}).  Cooperative checkpoints in the
    engine event loop, Pathfinder negotiation rounds and placer evaluation
    chunks abort the search with the typed
    {!Qspr.Mapper.Deadline_exceeded} error, which surfaces as a [Failed]
    verdict — never a hung request.

    {2 Shared warm caches}

    Per-fabric state is keyed by a digest of the fabric's canonical ASCII
    rendering plus the base-weight turn cost.  For each fabric the service
    keeps: the extracted component and routing graph (shared physically by
    every job, so cache keys agree), the estimator's trap-to-trap distance
    tables (one Dijkstra per trap, built once and shared), and a frozen
    {!Router.Route_cache.snapshot} of warm lower-bound tables and
    base-weight paths.  Jobs run with a private route cache that consults
    the snapshot read-only; after each wave the private caches are frozen
    back into the snapshot, so later jobs on the fabric start warm.
    Snapshots are immutable after build and published through the pool's
    queue mutex, which is what makes cross-domain sharing safe.

    The registry holds at most [max_fabrics] entries with LRU eviction
    ({!Ion_util.Lru}), so a stream of distinct fabrics cannot grow the
    heap without bound; evictions are counted in {!stats} and in every
    response's cache section.  Completed full-service responses are also
    cached ([response_cache] entries, optional [response_ttl_s] expiry)
    keyed on the job's deterministic encoding: a repeat of an identical
    job is served from the cache with [cached = true] and a byte-identical
    deterministic encoding.

    {2 Determinism}

    Job results (latency, trace, certificate digest, attempts) are a pure
    function of the job and the service's base configuration: warm cache
    hits replay the uncached searches bit-for-bit, wall-clock budgets are
    stripped, and each job runs its placer sequentially in one pool slot.
    Batch at any [jobs] count, sequential submission, warm or cold — all
    produce byte-identical deterministic response encodings.  Only the
    [cache]/[cpu_s] observability sections vary. *)

module type SERVICE = sig
  type t

  type limits = {
    jobs : int;  (** wave width: jobs mapped concurrently (1 = sequential) *)
    max_pending : int;  (** admitted jobs per submission before queue-full *)
    max_quote_us : float option;
        (** refuse jobs whose estimator quote exceeds this latency *)
    max_evals : int option;
        (** ceiling on requested [max_evals]; also the default per-job
            evaluation budget when a job requests none *)
    shed_start : int option;
        (** admission slot where the degradation ladder starts
            (default [max_pending / 2], min 1); clamped to
            [\[0, max_pending\]] *)
    max_fabrics : int;
        (** warm-state registry capacity; least-recently-served fabric
            evicted beyond it (0 disables warm sharing entirely) *)
    response_cache : int;
        (** response cache capacity in entries (0 disables) *)
    response_ttl_s : float option;
        (** optional response time-to-live on the service clock *)
  }

  val default_limits : limits
  (** [jobs = 1], [max_pending = 64], no quote or eval ceilings, ladder at
      [max_pending / 2], [max_fabrics = 8], [response_cache = 256], no
      response TTL. *)

  val create : ?limits:limits -> ?config:Qspr.Config.t -> unit -> t
  (** A fresh service: empty fabric registry, zeroed counters.  [config]
      (default {!Qspr.Config.default}) supplies timing, policies and placer
      parameters; its wall-clock budget is stripped and its [jobs] field is
      overridden to 1 per job (parallelism is across jobs, not within). *)

  val submit : t -> Protocol.job -> Protocol.response
  (** Admit and run one job synchronously.  Warm per-fabric state persists
      on [t], so repeated submissions against one fabric get warmer. *)

  val run_batch :
    ?first_slot:int ->
    ?on_result:(Protocol.job -> Protocol.response -> unit) ->
    t ->
    Protocol.job list ->
    Protocol.response list
  (** Admit every job, then map the admitted ones across [limits.jobs]
      domains in waves, merging warm tables between waves.  Responses are
      in input order, and their deterministic encodings are byte-identical
      to [submit]ting each job sequentially.

      [first_slot] (default 0) pre-advances the ladder slot counter — the
      journal replay path uses it so a resumed batch sheds exactly as the
      interrupted run would have.  [on_result] streams each (job, response)
      pair in input order as soon as it is final: refusals immediately,
      mapped jobs as their wave completes — the crash-only journal appends
      from this callback. *)

  val handle_line : ?deterministic:bool -> t -> string -> string
  (** One protocol round: parse a request line, run it, render the response
      line.  Malformed requests become structured [Rejected]/["request"]
      responses rather than exceptions. *)

  (** The degradation-ladder rungs, cheapest-to-serve last. *)
  type rung = Full | Prescreen | Budgeted | Quote_only | Refused

  val rung_of : limits -> slot:int -> rung
  (** Pure ladder policy: the rung a job admitted at [slot] receives. *)

  val rung_name : rung -> string
  (** The wire name carried in [Completed.shed] (["none"] for [Full]). *)

  type stats = {
    fabrics : int;  (** distinct fabrics in the registry *)
    fabric_evictions : int;  (** warm fabric entries dropped by the LRU cap *)
    shared_paths : int;  (** warm path entries across all snapshots *)
    shared_bounds : int;  (** warm lower-bound tables across all snapshots *)
    response_hits : int;  (** responses served from the response cache *)
    response_evictions : int;  (** response entries evicted or expired *)
    completed : int;
    rejected : int;
    failed : int;
    shed : int;  (** jobs answered below full service (rungs + quote-only) *)
  }

  val stats : t -> stats
end

include SERVICE
