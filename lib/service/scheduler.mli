(** The mapping-as-a-service engine behind [qspr serve].

    One contract ({!SERVICE}) drives the CLI daemon, the batch runner, the
    tests and the throughput bench, so every consumer exercises the
    identical admission, scheduling and cache-sharing machinery.

    {2 Admission control}

    Every job passes the same ingress tiers, in order: request validation
    (placer name), {b lint} ([Analysis.Registry.lint] over the program and
    fabric — severity-2 findings produce a structured rejection instead of
    a mapper exception), mapper-context construction, the {b budget} tier
    (a requested [max_evals] above the service ceiling is refused), the
    {b quote} tier (the LEQA-style estimator predicts the latency of a
    deterministic center placement — ~89x cheaper than routing — and the
    job is refused when the quote exceeds the service's or the client's
    ceiling), and the {b queue} tier (at most [max_pending] admitted jobs
    per submission).

    {2 Shared warm caches}

    Per-fabric state is keyed by a digest of the fabric's canonical ASCII
    rendering plus the base-weight turn cost.  For each fabric the service
    keeps: the extracted component and routing graph (shared physically by
    every job, so cache keys agree), the estimator's trap-to-trap distance
    tables (one Dijkstra per trap, built once and shared), and a frozen
    {!Router.Route_cache.snapshot} of warm lower-bound tables and
    base-weight paths.  Jobs run with a private route cache that consults
    the snapshot read-only; after each wave the private caches are frozen
    back into the snapshot, so later jobs on the fabric start warm.
    Snapshots are immutable after build and published through the pool's
    queue mutex, which is what makes cross-domain sharing safe.

    {2 Determinism}

    Job results (latency, trace, certificate digest, attempts) are a pure
    function of the job and the service's base configuration: warm cache
    hits replay the uncached searches bit-for-bit, wall-clock budgets are
    stripped, and each job runs its placer sequentially in one pool slot.
    Batch at any [jobs] count, sequential submission, warm or cold — all
    produce byte-identical deterministic response encodings.  Only the
    [cache]/[cpu_s] observability sections vary. *)

module type SERVICE = sig
  type t

  type limits = {
    jobs : int;  (** wave width: jobs mapped concurrently (1 = sequential) *)
    max_pending : int;  (** admitted jobs per submission before queue-full *)
    max_quote_us : float option;
        (** refuse jobs whose estimator quote exceeds this latency *)
    max_evals : int option;
        (** ceiling on requested [max_evals]; also the default per-job
            evaluation budget when a job requests none *)
  }

  val default_limits : limits
  (** [jobs = 1], [max_pending = 64], no quote or eval ceilings. *)

  val create : ?limits:limits -> ?config:Qspr.Config.t -> unit -> t
  (** A fresh service: empty fabric registry, zeroed counters.  [config]
      (default {!Qspr.Config.default}) supplies timing, policies and placer
      parameters; its wall-clock budget is stripped and its [jobs] field is
      overridden to 1 per job (parallelism is across jobs, not within). *)

  val submit : t -> Protocol.job -> Protocol.response
  (** Admit and run one job synchronously.  Warm per-fabric state persists
      on [t], so repeated submissions against one fabric get warmer. *)

  val run_batch : t -> Protocol.job list -> Protocol.response list
  (** Admit every job, then map the admitted ones across [limits.jobs]
      domains in waves, merging warm tables between waves.  Responses are
      in input order, and their deterministic encodings are byte-identical
      to [submit]ting each job sequentially. *)

  val handle_line : ?deterministic:bool -> t -> string -> string
  (** One protocol round: parse a request line, run it, render the response
      line.  Malformed requests become structured [Rejected]/["request"]
      responses rather than exceptions. *)

  type stats = {
    fabrics : int;  (** distinct fabrics in the registry *)
    shared_paths : int;  (** warm path entries across all snapshots *)
    shared_bounds : int;  (** warm lower-bound tables across all snapshots *)
    completed : int;
    rejected : int;
    failed : int;
  }

  val stats : t -> stats
end

include SERVICE
