let magic = "qspr-journal/1"

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let key = fnv1a64

type entry = { key : int64; response_line : string; response : Protocol.response }

(* A record is one line: magic, 16-hex key of the request it answers, then
   the verbatim response line.  Validity requires the embedded response to
   decode — a torn tail (the process died mid-append) is a prefix of a
   valid record, and no JSON prefix decodes, so torn writes drop out here
   instead of poisoning the replay. *)
let parse_record line =
  match String.split_on_char ' ' line with
  | m :: k :: rest when String.equal m magic -> (
      match Int64.of_string_opt ("0x" ^ k) with
      | None -> None
      | Some key -> (
          let response_line = String.concat " " rest in
          match Protocol.response_of_line response_line with
          | Error _ -> None
          | Ok response -> Some { key; response_line; response }))
  | _ -> None

let replay path =
  if not (Sys.file_exists path) then []
  else begin
    let lines = In_channel.with_open_text path In_channel.input_lines in
    (* stop at the first unparseable record: everything after a torn or
       corrupt line is positionally meaningless *)
    let rec take acc = function
      | [] -> List.rev acc
      | line :: rest -> (
          match parse_record line with None -> List.rev acc | Some e -> take (e :: acc) rest)
    in
    take [] lines
  end

let consumed_slot (r : Protocol.response) =
  match r.Protocol.verdict with
  | Protocol.Completed _ | Protocol.Failed _ -> true
  | Protocol.Rejected { stage; _ } -> String.equal stage "shed" || String.equal stage "queue"

type t = { oc : out_channel }

let open_append path =
  { oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path }

let append t ~key ~response_line =
  Printf.fprintf t.oc "%s %016Lx %s\n" magic key response_line;
  (* flush per record: the crash-only contract is that every response the
     client saw is durable before the next one is computed *)
  flush t.oc

let close t = close_out t.oc
