module Coord = Ion_util.Coord
module Component = Fabric.Component
module Layout = Fabric.Layout
module Cell = Fabric.Cell
open Router

type report = { ok : bool; errors : string list }

let max_errors = 20

type collector = { mutable errs : string list; mutable count : int }

let err col fmt =
  Printf.ksprintf
    (fun s ->
      col.count <- col.count + 1;
      if col.count <= max_errors then col.errs <- s :: col.errs)
    fmt

let check ~graph ~timing ~channel_capacity ~junction_capacity ~initial_placement trace =
  let comp = Fabric.Graph.component graph in
  let lay = Component.layout comp in
  let traps = Component.traps comp in
  let col = { errs = []; count = 0 } in
  let nq = Array.length initial_placement in
  let pos = Array.map (fun tid -> traps.(tid).Component.tpos) initial_placement in
  let free_at = Array.make nq 0.0 in
  (* pending gate starts: instr id -> (time, qubits) *)
  let gate_open : (int, float * int list) Hashtbl.t = Hashtbl.create 16 in
  (* physical occupancy intervals per (qubit, resource): raw touches are
     collected and only *contiguous* ones merged later — a qubit crossing the
     same junction twice in different instructions occupies it twice, not for
     the whole span between the visits *)
  let intervals : (int * Resource.t, (float * float) list ref) Hashtbl.t = Hashtbl.create 256 in
  let touch q r t0 t1 =
    match Hashtbl.find_opt intervals (q, r) with
    | None -> Hashtbl.replace intervals (q, r) (ref [ (t0, t1) ])
    | Some l -> l := (t0, t1) :: !l
  in
  let merge_touches touches =
    let sorted = List.sort compare touches in
    let rec go acc = function
      | [] -> List.rev acc
      | (a, b) :: rest -> (
          match acc with
          | (pa, pb) :: acc' when a <= pb +. 1e-9 -> go ((pa, Float.max pb b) :: acc') rest
          | _ -> go ((a, b) :: acc) rest)
    in
    go [] sorted
  in
  let resource_of_cell c =
    match Component.segment_at comp c with
    | Some s -> Some (Resource.segment s)
    | None -> (
        match Component.junction_at comp c with Some j -> Some (Resource.junction j) | None -> None)
  in
  let check_qubit q = q >= 0 && q < nq in
  List.iter
    (fun cmd ->
      match cmd with
      | Micro.Move { qubit; from_; to_; start; finish } ->
          if not (check_qubit qubit) then err col "move: unknown qubit %d" qubit
          else begin
            if not (Coord.equal from_ pos.(qubit)) then
              err col "q%d at %.1f: move starts at %s but qubit is at %s" qubit start
                (Coord.to_string from_) (Coord.to_string pos.(qubit));
            if start < free_at.(qubit) -. 1e-9 then
              err col "q%d at %.1f: move overlaps previous command (free at %.1f)" qubit start
                free_at.(qubit);
            if Coord.manhattan from_ to_ <> 1 then
              err col "q%d at %.1f: move is not a unit step (%s -> %s)" qubit start
                (Coord.to_string from_) (Coord.to_string to_);
            if Float.abs (finish -. start -. timing.Timing.t_move) > 1e-9 then
              err col "q%d at %.1f: move duration %.2f != t_move" qubit start (finish -. start);
            (match Layout.get lay to_ with
            | Cell.Empty -> err col "q%d at %.1f: move into empty cell %s" qubit start (Coord.to_string to_)
            | Cell.Junction | Cell.Channel _ | Cell.Trap -> ());
            (* record physical presence in transit resources *)
            (match resource_of_cell from_ with Some r -> touch qubit r start finish | None -> ());
            (match resource_of_cell to_ with Some r -> touch qubit r start finish | None -> ());
            pos.(qubit) <- to_;
            free_at.(qubit) <- finish
          end
      | Micro.Turn { qubit; at; start; finish } ->
          if not (check_qubit qubit) then err col "turn: unknown qubit %d" qubit
          else begin
            if not (Coord.equal at pos.(qubit)) then
              err col "q%d at %.1f: turn at %s but qubit is at %s" qubit start (Coord.to_string at)
                (Coord.to_string pos.(qubit));
            if start < free_at.(qubit) -. 1e-9 then
              err col "q%d at %.1f: turn overlaps previous command" qubit start;
            (match Layout.get lay at with
            | Cell.Junction -> ()
            | _ -> err col "q%d at %.1f: turn outside a junction (%s)" qubit start (Coord.to_string at));
            if Float.abs (finish -. start -. timing.Timing.t_turn) > 1e-9 then
              err col "q%d at %.1f: turn duration %.2f != t_turn" qubit start (finish -. start);
            (match resource_of_cell at with Some r -> touch qubit r start finish | None -> ());
            free_at.(qubit) <- finish
          end
      | Micro.Gate_start { instr_id; trap; qubits; time } ->
          (match Layout.get lay trap with
          | Cell.Trap -> ()
          | _ -> err col "gate #%d at %.1f: site %s is not a trap" instr_id time (Coord.to_string trap));
          List.iter
            (fun q ->
              if not (check_qubit q) then err col "gate #%d: unknown qubit %d" instr_id q
              else begin
                if not (Coord.equal pos.(q) trap) then
                  err col "gate #%d at %.1f: q%d is at %s, not at trap %s" instr_id time q
                    (Coord.to_string pos.(q)) (Coord.to_string trap);
                if time < free_at.(q) -. 1e-9 then
                  err col "gate #%d at %.1f: q%d still moving" instr_id time q
              end)
            qubits;
          if Hashtbl.mem gate_open instr_id then err col "gate #%d: started twice" instr_id;
          Hashtbl.replace gate_open instr_id (time, qubits)
      | Micro.Gate_end { instr_id; qubits; time; _ } -> (
          match Hashtbl.find_opt gate_open instr_id with
          | None -> err col "gate #%d at %.1f: end without start" instr_id time
          | Some (t0, qs) ->
              Hashtbl.remove gate_open instr_id;
              let expected =
                if List.length qs >= 2 then timing.Timing.t_gate2 else timing.Timing.t_gate1
              in
              if Float.abs (time -. t0 -. expected) > 1e-9 then
                err col "gate #%d: duration %.2f != expected %.2f" instr_id (time -. t0) expected;
              List.iter (fun q -> if check_qubit q then free_at.(q) <- time) qubits))
    trace;
  Hashtbl.iter (fun id _ -> err col "gate #%d: never ended" id) gate_open;
  (* capacity sweep per resource: merge each qubit's contiguous touches into
     visit intervals, then count simultaneous visitors *)
  let by_resource : (Resource.t, (float * float) list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (_, r) touches ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_resource r) in
      Hashtbl.replace by_resource r (merge_touches !touches @ l))
    intervals;
  Hashtbl.iter
    (fun r ivs ->
      let cap = if Resource.is_segment r then channel_capacity else junction_capacity in
      (* half-open intervals: a qubit finishing its move out at t and another
         starting its move in at t is a clean handoff, not an overlap, so
         exits sort before entries at equal timestamps *)
      let events =
        List.concat_map (fun (a, b) -> [ (a, 1); (b, -1) ]) ivs
        |> List.sort (fun (ta, da) (tb, db) ->
               match Float.compare ta tb with 0 -> Int.compare da db | c -> c)
      in
      let level = ref 0 and worst = ref 0 in
      List.iter
        (fun (_, d) ->
          level := !level + d;
          worst := max !worst !level)
        events;
      if !worst > cap then
        err col "%s: %d simultaneous qubits exceed capacity %d"
          (Format.asprintf "%a" Resource.pp r)
          !worst cap)
    by_resource;
  { ok = col.count = 0; errors = List.rev col.errs }
