(** Event-driven fabric simulator (paper Sections III-IV).

    Executes a QIDG on a fabric: issues ready instructions in priority order,
    selects a target trap for every two-qubit gate, routes operands with
    Dijkstra under live Eq. 2 congestion weights, commits channel/junction
    capacity for the duration of each crossing, parks unroutable instructions
    in the busy queue, and replays them when a qubit exits a channel or an
    instruction completes.  The result is the execution latency, the
    micro-command trace and the final placement — everything the MVFB placer
    and the experiment harness need.

    Two policy knobs reproduce the published tools:
    - {!qspr_policy}: turn-aware routing, both operands move toward the trap
      nearest the median of their positions, channel capacity 2 (ion
      multiplexing);
    - {!quale_policy}: turn-blind routing (turns still cost time when
      executed, but the router cannot see them — Figure 5's shortcoming),
      destination operand pinned, channel capacity 1. *)

type routing_style = Both_move | Dest_pinned

type policy = {
  turn_aware : bool;  (** charge turns in the routing metric *)
  routing : routing_style;
  channel_capacity : int;
  junction_capacity : int;
  trap_candidates : int;  (** nearest available traps tried per issue attempt *)
}

val qspr_policy : policy
val quale_policy : policy

type instr_stats = {
  ready_at : float;  (** dependencies satisfied *)
  issued_at : float;  (** routing committed; [issued_at - ready_at] is T_congestion *)
  completed_at : float;
  route_moves : int;
  route_turns : int;
}

type result = {
  latency : float;
  trace : Router.Micro.command list;  (** time-ordered *)
  final_placement : int array;  (** qubit -> trap id at completion *)
  stats : instr_stats array;
  total_congestion_wait : float;
  total_routing_time : float;
  route_searches : int;  (** single-net Dijkstra searches actually run *)
  route_cache_hits : int;  (** searches served verbatim from the route cache *)
}

type error =
  | Invalid of string  (** malformed arguments: placement/priority shape, bad budget factor *)
  | Deadlock of { stuck : int }
      (** the event queue drained with [stuck] instructions still outstanding —
          some operand pair cannot be routed even on an idle fabric
          (disconnected or faulted substrate) *)
  | Livelock of { events : int; budget : int }
      (** the engine emitted more than [budget] events without completing the
          program — runaway retry churn *)

val string_of_error : error -> string
(** Human-readable rendering of an engine failure. *)

val run :
  graph:Fabric.Graph.t ->
  timing:Router.Timing.t ->
  policy:policy ->
  dag:Qasm.Dag.t ->
  priorities:float array ->
  placement:int array ->
  ?max_events_factor:int ->
  ?route_cache:Router.Route_cache.t ->
  ?cancel:(unit -> unit) ->
  unit ->
  (result, error) Stdlib.result
(** [placement.(q)] is the initial trap of qubit [q]; traps hold at most two
    ions (MVFB backward runs start from final placements where gate pairs
    share traps).  Fails with a typed {!error} on invalid placements, graphs
    whose traps cannot reach each other (deadlock), or event-budget blowout
    (livelock).  [max_events_factor] (default 10_000) scales the livelock
    budget as [factor * (instructions + 1)] — exposed so tests can force the
    livelock branch cheaply.

    [route_cache], when given, memoizes the searches issued while nothing is
    in flight (see {!Router.Congestion.base_weights_active}) across runs and
    candidates on the same fabric; hits replay the uncached plain-Dijkstra
    result bit-for-bit, so the trace and latency are identical with or
    without a cache — only {!result.route_searches} shrinks.  The cache is
    single-domain state; pass each domain its own
    ({!Router.Route_cache.domain_local}).

    [cancel], when given, is a cooperative cancellation checkpoint polled
    once per event batch.  It returns unit on "keep going" and signals
    cancellation by raising (the mapper passes a closure raising
    [Ion_util.Clock.Expired] when the request deadline has passed); the
    exception propagates out of [run] uncaught, so arms it only around
    typed catch sites. *)
