module Coord = Ion_util.Coord
module Graph = Fabric.Graph
module Component = Fabric.Component
open Qasm
open Router

type routing_style = Both_move | Dest_pinned

type policy = {
  turn_aware : bool;
  routing : routing_style;
  channel_capacity : int;
  junction_capacity : int;
  trap_candidates : int;
}

let qspr_policy =
  { turn_aware = true; routing = Both_move; channel_capacity = 2; junction_capacity = 2; trap_candidates = 3 }

let quale_policy =
  { turn_aware = false; routing = Dest_pinned; channel_capacity = 1; junction_capacity = 2; trap_candidates = 1 }

type instr_stats = {
  ready_at : float;
  issued_at : float;
  completed_at : float;
  route_moves : int;
  route_turns : int;
}

type result = {
  latency : float;
  trace : Micro.command list;
  final_placement : int array;
  stats : instr_stats array;
  total_congestion_wait : float;
  total_routing_time : float;
  route_searches : int;
  route_cache_hits : int;
}

(* Events are int-packed for the unboxed event queue: bit 0 tags the kind
   (0 = instruction done, 1 = resource exit), the upper bits carry the
   instruction id or the packed resource.  Packing keeps the warm path free
   of per-event variant blocks and boxed priorities — the queue is an
   {!Ion_util.Fheap}, whose binary-heap sifts mirror the former
   [(float, event) Pqueue] comparison-for-comparison, so pop order (ties
   included) is bit-identical. *)
let ev_instr_done id = id lsl 1
let ev_resource_exit r = (Resource.to_int r lsl 1) lor 1

(* A two-qubit instruction may commit with only one operand routable: the
   other stays *pending* in its trap (reserved, engaged) and is dispatched as
   soon as congestion allows — typically when the first operand's own
   committed channels free up.  Without this staging, capacity-1 fabrics
   deadlock whenever both operands need the same tap segment of the chosen
   trap. *)
type in_flight = {
  target_trap : int;
  operands : int list;
  mutable pending : int list;
  mutable arrivals : float list;
}

type state = {
  graph : Graph.t;
  comp : Component.t;
  timing : Timing.t;
  policy : policy;
  dag : Dag.t;
  ready_set : Scheduler.Ready_set.t;
  congestion : Congestion.t;
  qubit_trap : int option array; (* physical trap; None while traveling *)
  qubit_engaged : bool array; (* reserved by an in-flight instruction *)
  occupants : int list array; (* trap -> qubits assigned (resident or inbound) *)
  flights : (int, in_flight) Hashtbl.t; (* instr id -> flight info *)
  events : Ion_util.Fheap.t; (* int-packed events keyed by time, see above *)
  mutable clock : float;
  trace_buf : Micro.Builder.t; (* per-domain arena; commands materialize once at the end *)
  mutable exit_buf : float array; (* scratch for Path.resource_exits_into *)
  ready_at : float array;
  issued_at : float array;
  completed_at : float array;
  route_moves : int array;
  route_turns : int array;
  mutable emitted_events : int;
  workspace : Router.Workspace.t; (* per-domain scratch for route searches *)
  route_cache : Route_cache.t option; (* congestion-free path memo, None = legacy *)
  mutable route_searches : int;
  mutable route_cache_hits : int;
}

let turn_cost st = if st.policy.turn_aware then Timing.turn_cost_in_moves st.timing else 0.0

let weight st kind = Congestion.weight st.congestion ~turn_cost:(turn_cost st) kind

let trap_pos st tid = (Component.traps st.comp).(tid).Component.tpos

(* a trap can host the instruction's operands iff every qubit already
   assigned to it is one of those operands — here specialized to the
   two-operand case, closure-free: toplevel recursion over the occupant
   list so the hot issue loop allocates nothing per availability probe *)
let rec avail2 c t = function [] -> true | q :: tl -> (q = c || q = t) && avail2 c t tl

let qubit_trap st q = st.qubit_trap.(q)

(* Warm-path memo for [Component.nearest_traps]: every two-qubit issue
   attempt re-ranks all traps around a midpoint anchor, and the ranking is
   a pure function of the immutable component and the anchor — the same
   few anchors recur across retries, runs and service jobs.  One
   domain-local table, swapped whenever the engine runs on a different
   component; a hit returns the exact list the sort produced, so the memo
   is invisible to trap choice. *)
let nearest_memo : (Component.t * (int, int list) Hashtbl.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let nearest_traps st anchor =
  let slot = Domain.DLS.get nearest_memo in
  let tbl =
    match !slot with
    | Some (c, tbl) when c == st.comp -> tbl
    | _ ->
        let tbl = Hashtbl.create 64 in
        slot := Some (st.comp, tbl);
        tbl
  in
  let key = (anchor.Coord.x lsl 20) lor anchor.Coord.y in
  match Hashtbl.find_opt tbl key with
  | Some ranked -> ranked
  | None ->
      let ranked = Component.nearest_traps st.comp anchor in
      Hashtbl.add tbl key ranked;
      ranked

(* first [n] available traps from the ranking, skipping [skip] (the
   preferred trap, or -1): toplevel recursion, so the only allocation is
   the <= n-element result — the former List.filter materialized the whole
   available set before truncating.  Availability is a pure read, so not
   probing traps past the cut-off is invisible; result order is identical. *)
let rec collect_avail st control target ~skip acc n = function
  | [] -> List.rev acc
  | tid :: tl ->
      if n = 0 then List.rev acc
      else if tid <> skip && avail2 control target st.occupants.(tid) then
        collect_avail st control target ~skip (tid :: acc) (n - 1) tl
      else collect_avail st control target ~skip acc n tl

(* candidate target traps for a two-qubit instruction, best first:
   take k (preferred @ [available traps by distance from the anchor]) *)
let trap_candidates st ~control ~target =
  let ct = match qubit_trap st control with Some t -> t | None -> assert false in
  let tt = match qubit_trap st target with Some t -> t | None -> assert false in
  if ct = tt then [ ct ]
  else
    let anchor =
      match st.policy.routing with
      | Both_move -> Coord.midpoint (trap_pos st ct) (trap_pos st tt)
      | Dest_pinned -> trap_pos st tt
    in
    let preferred =
      match st.policy.routing with
      | Dest_pinned when avail2 control target st.occupants.(tt) -> tt
      | Dest_pinned | Both_move -> -1
    in
    let k = st.policy.trap_candidates in
    if k <= 0 then []
    else if preferred >= 0 then
      preferred :: collect_avail st control target ~skip:preferred [] (k - 1) (nearest_traps st anchor)
    else collect_avail st control target ~skip:(-1) [] k (nearest_traps st anchor)

(* Exact O(degree²) early-out for the dispatch_pending flood: a staged
   operand whose trap's tap segment is still held by its partner's crossing
   would otherwise flood-fill everything reachable under finite weights
   before failing.  [src] is sealed when every 2-step escape is cut: each
   out-edge is either saturated already, or leads to a node whose only
   finite continuations return to [src] (tap edges never saturate, so the
   depth-1 check alone can never fire from a trap).  Sealed ⇒ every walk
   oscillates between [src] and its tap cells ⇒ Dijkstra would return None
   after settling that same perimeter — the skip is bit-identical. *)
let all_infinite_except st v ~back =
  let stop = Graph.succ_stop st.graph v in
  let rec go i =
    i >= stop
    || ((Graph.succ_dst st.graph i = back || weight st (Graph.succ_kind st.graph i) = Float.infinity)
       && go (i + 1))
  in
  go (Graph.succ_start st.graph v)

let source_sealed st ~src ~dst =
  let stop = Graph.succ_stop st.graph src in
  let rec go i =
    i >= stop
    || (let v = Graph.succ_dst st.graph i in
        (weight st (Graph.succ_kind st.graph i) = Float.infinity
        || (v <> dst && all_infinite_except st v ~back:src))
        && go (i + 1))
  in
  go (Graph.succ_start st.graph src)

(* route one qubit from its trap to the target trap under current weights;
   an already-there qubit yields the empty path.  While nothing is in
   flight the live weights equal the base weights and the search is a pure
   function of (turn_cost, src, dst): serve it from the domain's route
   cache when one is armed, or run it and remember the result.  Cached
   entries are the plain-Dijkstra answers (flavor Plain), so a hit replays
   the uncached search bit-for-bit — equal-cost tie-breaking included. *)
let route_qubit st q ~to_trap =
  match qubit_trap st q with
  | None -> None
  | Some from_trap ->
      if from_trap = to_trap then Some (Path.empty (Graph.trap_node st.graph to_trap))
      else
        let src = Graph.trap_node st.graph from_trap and dst = Graph.trap_node st.graph to_trap in
        if source_sealed st ~src ~dst then None
        else begin
          let cache =
            match st.route_cache with
            | Some c when Congestion.base_weights_active st.congestion -> Some c
            | Some _ | None -> None
          in
          let tc = turn_cost st in
          (* uncached search: same run as Dijkstra.shortest_path, but the
             result packs straight out of the workspace predecessors *)
          let search () =
            st.route_searches <- st.route_searches + 1;
            (* prefill the per-edge weights so the relax loop reads them
               unboxed — same values as the closure, zero words per edge *)
            let ew = Workspace.edge_weights_for st.workspace (Graph.num_edges st.graph) in
            Congestion.weights_into st.congestion ~turn_cost:tc st.graph ew;
            Dijkstra.run_into ~edge_weights:ew st.workspace st.graph ~weight:(weight st) ~src ~dst;
            Path.of_workspace st.workspace st.graph ~src ~dst
          in
          match cache with
          | Some c -> (
              match Route_cache.find c Route_cache.Plain ~turn_cost:tc ~src ~dst with
              | Some result ->
                  st.route_cache_hits <- st.route_cache_hits + 1;
                  result
              | None ->
                  let result = search () in
                  Route_cache.store c Route_cache.Plain ~turn_cost:tc ~src ~dst result;
                  result)
          | None -> search ()
        end

let acquire_path st p =
  for i = 0 to Path.num_resources p - 1 do
    Congestion.acquire st.congestion (Path.resource p i)
  done

let release_path st p =
  for i = 0 to Path.num_resources p - 1 do
    Congestion.release st.congestion (Path.resource p i)
  done

let schedule st delay ev =
  st.emitted_events <- st.emitted_events + 1;
  (* manual push — Fheap.add would box the time (see fheap.mli) *)
  let q = st.events in
  Ion_util.Fheap.ensure_room q;
  q.Ion_util.Fheap.prio.(q.Ion_util.Fheap.size) <- st.clock +. delay;
  q.Ion_util.Fheap.data.(q.Ion_util.Fheap.size) <- ev;
  q.Ion_util.Fheap.size <- q.Ion_util.Fheap.size + 1;
  Ion_util.Fheap.sift_up q (q.Ion_util.Fheap.size - 1)

(* lower one routed operand: append its micro-commands to the trace arena,
   schedule its resource exits (offsets into the reusable scratch buffer, in
   first-crossing order — identical event insertion order to the former
   tuple-list walk), and return arrival time *)
let dispatch_qubit st q path =
  let arrival = Micro.Builder.lower_path st.trace_buf st.graph st.timing ~qubit:q ~start:st.clock path in
  let k = Path.num_resources path in
  if Array.length st.exit_buf < k then st.exit_buf <- Array.make (Int.max 64 k) 0.0;
  Path.resource_exits_into st.timing path st.exit_buf;
  for i = 0 to k - 1 do
    schedule st st.exit_buf.(i) (ev_resource_exit (Path.resource path i))
  done;
  arrival

let remove_from_trap st q tid = st.occupants.(tid) <- List.filter (( <> ) q) st.occupants.(tid)

(* dispatch one operand of instruction [id]: leave the old trap, emit the
   movement commands and record the arrival *)
let dispatch_operand st id fl q path =
  (* leaving for the trap the qubit is already assigned to must not disturb
     the occupant list commit_gate2 just wrote *)
  (match st.qubit_trap.(q) with
  | Some old when old <> fl.target_trap -> remove_from_trap st q old
  | Some _ | None -> ());
  st.qubit_trap.(q) <- None;
  let arrival = dispatch_qubit st q path in
  st.route_moves.(id) <- st.route_moves.(id) + Path.moves path;
  st.route_turns.(id) <- st.route_turns.(id) + Path.turns path;
  fl.pending <- List.filter (( <> ) q) fl.pending;
  fl.arrivals <- arrival :: fl.arrivals;
  (* once every operand is en route, the gate firing is fully determined *)
  if fl.pending = [] then begin
    let start = List.fold_left Float.max 0.0 fl.arrivals in
    let finish = start +. st.timing.Timing.t_gate2 in
    let q0, q1 = match fl.operands with [ a; b ] -> (a, b) | [ a ] -> (a, -1) | _ -> assert false in
    Micro.Builder.add_gate_start st.trace_buf ~instr_id:id ~trap:(trap_pos st fl.target_trap) ~q0 ~q1 ~time:start;
    Micro.Builder.add_gate_end st.trace_buf ~instr_id:id ~trap:(trap_pos st fl.target_trap) ~q0 ~q1 ~time:finish;
    schedule st (finish -. st.clock) (ev_instr_done id)
  end

let commit_gate2 st id ~trap ~control ~target ~dispatch_now =
  Scheduler.Ready_set.mark_issued st.ready_set id;
  st.issued_at.(id) <- st.clock;
  st.occupants.(trap) <- [ control; target ];
  st.qubit_engaged.(control) <- true;
  st.qubit_engaged.(target) <- true;
  let fl = { target_trap = trap; operands = [ control; target ]; pending = [ control; target ]; arrivals = [] } in
  Hashtbl.replace st.flights id fl;
  List.iter (fun (q, path) -> dispatch_operand st id fl q path) dispatch_now

(* attempt to issue a two-qubit instruction; true on success *)
let try_issue_gate2 st id control target =
  if st.qubit_engaged.(control) || st.qubit_engaged.(target) then false
    (* operand busy: stays in the ready set *)
  else begin
    let candidates = trap_candidates st ~control ~target in
    (* pass 1: both operands routable now (source routed first, destination
       under the source's committed congestion) *)
    let rec attempt_full = function
      | [] -> false
      | trap :: rest -> (
          match route_qubit st control ~to_trap:trap with
          | None -> attempt_full rest
          | Some p_control -> (
              acquire_path st p_control;
              match route_qubit st target ~to_trap:trap with
              | None ->
                  release_path st p_control;
                  attempt_full rest
              | Some p_target ->
                  acquire_path st p_target;
                  commit_gate2 st id ~trap ~control ~target
                    ~dispatch_now:[ (control, p_control); (target, p_target) ];
                  true))
    in
    (* pass 2: only one operand can move yet — commit it, stage the other *)
    let rec attempt_partial = function
      | [] -> false
      | trap :: rest -> (
          match route_qubit st control ~to_trap:trap with
          | Some p_control ->
              acquire_path st p_control;
              commit_gate2 st id ~trap ~control ~target ~dispatch_now:[ (control, p_control) ];
              true
          | None -> (
              match route_qubit st target ~to_trap:trap with
              | Some p_target ->
                  acquire_path st p_target;
                  commit_gate2 st id ~trap ~control ~target ~dispatch_now:[ (target, p_target) ];
                  true
              | None -> attempt_partial rest))
    in
    let r1 = attempt_full candidates in
    if r1 then true
    else begin
      let r2 = attempt_partial candidates in
      if r2 then true
      else begin
        Scheduler.Ready_set.defer st.ready_set id;
        false
      end
    end
  end

(* retry the staged operands of in-flight instructions *)
let dispatch_pending st =
  Hashtbl.iter
    (fun id fl ->
      List.iter
        (fun q ->
          match route_qubit st q ~to_trap:fl.target_trap with
          | Some path ->
              acquire_path st path;
              dispatch_operand st id fl q path
          | None -> ())
        fl.pending)
    st.flights

let try_issue_gate1 st id q =
  match (st.qubit_engaged.(q), st.qubit_trap.(q)) with
  | true, _ | _, None -> false
  | false, Some tid ->
      Scheduler.Ready_set.mark_issued st.ready_set id;
      st.issued_at.(id) <- st.clock;
      st.qubit_engaged.(q) <- true;
      let finish = st.clock +. st.timing.Timing.t_gate1 in
      Micro.Builder.add_gate_start st.trace_buf ~instr_id:id ~trap:(trap_pos st tid) ~q0:q ~q1:(-1) ~time:st.clock;
      Micro.Builder.add_gate_end st.trace_buf ~instr_id:id ~trap:(trap_pos st tid) ~q0:q ~q1:(-1) ~time:finish;
      Hashtbl.replace st.flights id { target_trap = tid; operands = [ q ]; pending = []; arrivals = [] };
      schedule st (finish -. st.clock) (ev_instr_done id);
      true

let complete st id =
  (match Hashtbl.find_opt st.flights id with
  | Some { target_trap; operands; _ } ->
      List.iter
        (fun q ->
          st.qubit_trap.(q) <- Some target_trap;
          st.qubit_engaged.(q) <- false)
        operands;
      Hashtbl.remove st.flights id
  | None -> ());
  st.completed_at.(id) <- st.clock;
  let newly_ready = Scheduler.Ready_set.mark_done st.ready_set id in
  List.iter (fun i -> st.ready_at.(i) <- st.clock) newly_ready

(* issue everything issuable at the current clock; declarations complete
   immediately, which can ready further instructions, so iterate *)
let rec issue_round st =
  let progressed = ref false in
  Scheduler.Ready_set.iter_ready st.ready_set (fun id ->
      if Scheduler.Ready_set.is_ready st.ready_set id then begin
        let issued =
          match (Dag.node st.dag id).Dag.instr with
          | Instr.Qubit_decl _ ->
              st.issued_at.(id) <- st.clock;
              complete st id;
              true
          | Instr.Gate1 (_, q) -> try_issue_gate1 st id q
          | Instr.Gate2 (_, c, t) -> try_issue_gate2 st id c t
        in
        if issued then progressed := true
      end);
  if !progressed then issue_round st

let max_events_factor = 10_000

type error =
  | Invalid of string
  | Deadlock of { stuck : int }
  | Livelock of { events : int; budget : int }

let string_of_error = function
  | Invalid msg -> msg
  | Deadlock { stuck } ->
      Printf.sprintf "Engine.run: deadlock — %d instruction(s) unroutable with an idle fabric"
        stuck
  | Livelock { events; budget } ->
      Printf.sprintf "Engine.run: event budget exceeded (livelock? %d events > budget %d)" events
        budget

let run ~graph ~timing ~policy ~dag ~priorities ~placement ?(max_events_factor = max_events_factor)
    ?route_cache ?cancel () =
  let comp = Graph.component graph in
  let nq = Program.num_qubits (Dag.program dag) in
  let ntraps = Array.length (Component.traps comp) in
  let n = Dag.num_nodes dag in
  if max_events_factor < 1 then Error (Invalid "Engine.run: max_events_factor must be positive")
  else if Array.length placement <> nq then Error (Invalid "Engine.run: placement length mismatch")
  else if Array.exists (fun t -> t < 0 || t >= ntraps) placement then
    Error (Invalid "Engine.run: placement trap id out of range")
  else begin
    (* traps hold up to two ions, and MVFB backward runs legitimately start
       from a forward run's final placement where gate pairs share traps *)
    let load = Array.make ntraps 0 in
    let overfull = ref false in
    Array.iter
      (fun t ->
        load.(t) <- load.(t) + 1;
        if load.(t) > 2 then overfull := true)
      placement;
    if !overfull then
      Error (Invalid "Engine.run: placement assigns more than two qubits to one trap")
    else if Array.length priorities <> n then
      Error (Invalid "Engine.run: priorities length mismatch")
    else begin
      let st =
        {
          graph;
          comp;
          timing;
          policy;
          dag;
          ready_set = Scheduler.Ready_set.create dag ~priorities;
          congestion =
            Congestion.create comp ~channel_capacity:policy.channel_capacity
              ~junction_capacity:policy.junction_capacity;
          qubit_trap = Array.map Option.some placement;
          qubit_engaged = Array.make nq false;
          occupants = Array.make ntraps [];
          flights = Hashtbl.create 16;
          events = Ion_util.Fheap.create ();
          clock = 0.0;
          trace_buf = Micro.Builder.domain_local ();
          exit_buf = [||];
          ready_at = Array.make n 0.0;
          issued_at = Array.make n 0.0;
          completed_at = Array.make n 0.0;
          route_moves = Array.make n 0;
          route_turns = Array.make n 0;
          emitted_events = 0;
          workspace = Workspace.domain_local ();
          route_cache;
          route_searches = 0;
          route_cache_hits = 0;
        }
      in
      (match route_cache with Some c -> Route_cache.for_graph c graph | None -> ());
      Micro.Builder.reset st.trace_buf;
      Array.iteri (fun q t -> st.occupants.(t) <- q :: st.occupants.(t)) placement;
      let budget = max_events_factor * (n + 1) in
      let error = ref None in
      (* cooperative cancellation checkpoint: polled once per event batch,
         so an expired deadline aborts within one batch of simulated work
         instead of running the whole program hot.  The closure raises
         (Ion_util.Clock.Expired); nothing here catches it — the mapper
         entry points translate it into the typed Deadline_exceeded. *)
      let checkpoint = match cancel with Some f -> f | None -> Fun.const () in
      issue_round st;
      while
        !error = None
        && (not (Scheduler.Ready_set.all_done st.ready_set))
        && st.emitted_events <= budget
      do
        checkpoint ();
        if Ion_util.Fheap.is_empty st.events then
          error :=
            Some
              (Deadlock
                 {
                   stuck =
                     Scheduler.Ready_set.busy_count st.ready_set
                     + List.length (Scheduler.Ready_set.ready st.ready_set)
                     + Hashtbl.length st.flights;
                 })
        else begin
            let t = st.events.Ion_util.Fheap.prio.(0) in
            let ev0 = Ion_util.Fheap.top_data st.events in
            Ion_util.Fheap.drop_min st.events;
            st.clock <- t;
            (* drain all events at this timestamp before re-issuing,
               processing each as it pops: completions and releases never
               enqueue events, so inline processing sees the same heap —
               and the same order — the former collect-then-replay did *)
            let process ev =
              if ev land 1 = 1 then Congestion.release st.congestion (Resource.of_int (ev asr 1))
              else complete st (ev asr 1)
            in
            process ev0;
            while
              (not (Ion_util.Fheap.is_empty st.events))
              && st.events.Ion_util.Fheap.prio.(0) <= t +. 1e-9
            do
              let e = Ion_util.Fheap.top_data st.events in
              Ion_util.Fheap.drop_min st.events;
              process e
            done;
            dispatch_pending st;
            Scheduler.Ready_set.requeue_busy st.ready_set;
            issue_round st;
        end
      done;
      match !error with
      | Some e -> Error e
      | None ->
          if not (Scheduler.Ready_set.all_done st.ready_set) then
            Error (Livelock { events = st.emitted_events; budget })
          else begin
            let final_placement =
              Array.map
                (function Some tid -> tid | None -> -1 (* unreachable: all done *))
                st.qubit_trap
            in
            let stats =
              Array.init n (fun i ->
                  {
                    ready_at = st.ready_at.(i);
                    issued_at = st.issued_at.(i);
                    completed_at = st.completed_at.(i);
                    route_moves = st.route_moves.(i);
                    route_turns = st.route_turns.(i);
                  })
            in
            let latency = Array.fold_left (fun acc (s : instr_stats) -> Float.max acc s.completed_at) 0.0 stats in
            let total_congestion_wait =
              Array.fold_left (fun acc (s : instr_stats) -> acc +. Float.max 0.0 (s.issued_at -. s.ready_at)) 0.0 stats
            in
            let trace = Micro.Builder.to_commands st.trace_buf in
            let total_routing_time =
              Array.fold_left
                (fun acc (s : instr_stats) ->
                  acc
                  +. (float_of_int s.route_moves *. timing.Timing.t_move)
                  +. (float_of_int s.route_turns *. timing.Timing.t_turn))
                0.0 stats
            in
            Ok
              {
                latency;
                trace;
                final_placement;
                stats;
                total_congestion_wait;
                total_routing_time;
                route_searches = st.route_searches;
                route_cache_hits = st.route_cache_hits;
              }
          end
    end
  end
