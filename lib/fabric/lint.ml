module F = Analysis_finding

let pp_finding = F.pp

let pass = "fabric"

let capacity_error ~num_qubits comp =
  let ntraps = Array.length (Component.traps comp) in
  if ntraps < num_qubits then
    Some (Printf.sprintf "fabric has %d traps but the program needs %d qubits" ntraps num_qubits)
  else None

let check ?num_qubits lay =
  match Component.extract lay with
  | Error msg -> [ F.make ~pass ~kind:"malformed" F.Error "%s" msg ]
  | Ok comp ->
      let findings = ref [] in
      let emit f = findings := f :: !findings in
      let traps = Component.traps comp in
      let ntraps = Array.length traps in
      let graph = Graph.build comp in
      if ntraps = 0 then emit (F.make ~pass ~kind:"no-traps" F.Error "fabric has no traps: no gate can execute")
      else begin
        (* connectivity: BFS from trap 0 over the turn-aware routing graph *)
        let seen = Array.make (Graph.num_nodes graph) false in
        let q = Queue.create () in
        Queue.add (Graph.trap_node graph 0) q;
        seen.(Graph.trap_node graph 0) <- true;
        while not (Queue.is_empty q) do
          let n = Queue.pop q in
          List.iter
            (fun (e : Graph.edge) ->
              if not seen.(e.Graph.dst) then begin
                seen.(e.Graph.dst) <- true;
                Queue.add e.Graph.dst q
              end)
            (Graph.adj graph n)
        done;
        let unreachable =
          Array.to_list traps
          |> List.filter (fun (t : Component.trap) -> not seen.(Graph.trap_node graph t.Component.tid))
        in
        if unreachable <> [] then
          emit
            (F.make ~pass ~kind:"disconnected"
               ~loc:(F.Cell (List.hd unreachable).Component.tpos)
               F.Error "fabric is disconnected: %d of %d traps unreachable from trap 0 (e.g. the trap at %s)"
               (List.length unreachable) ntraps
               (Ion_util.Coord.to_string (List.hd unreachable).Component.tpos))
      end;
      (match num_qubits with
      | Some nq -> (
          match capacity_error ~num_qubits:nq comp with
          | Some msg -> emit (F.make ~pass ~kind:"trap-capacity" F.Error "%s" msg)
          | None ->
              if 2 * nq > ntraps then
                emit
                  (F.make ~pass ~kind:"tight-capacity" F.Warning
                     "only %d traps for %d qubits: placement has little slack and congestion will be high"
                     ntraps nq))
      | None -> ());
      if Array.length (Component.junctions comp) = 0 then
        emit (F.make ~pass ~kind:"no-junctions" F.Hint "no junctions: a linear fabric (no turns are possible)");
      (* dead-end channel segments: fewer than two junction neighbours *)
      let dead_ends = ref 0 in
      Array.iter
        (fun (s : Component.segment) ->
          let cells = s.Component.cells in
          let len = Array.length cells in
          let dir_lo, dir_hi =
            match s.Component.orientation with
            | Cell.Horizontal -> (Ion_util.Coord.West, Ion_util.Coord.East)
            | Cell.Vertical -> (Ion_util.Coord.North, Ion_util.Coord.South)
          in
          let junction_end c step = Component.junction_at comp (Ion_util.Coord.step c step) <> None in
          let ends =
            (if junction_end cells.(0) dir_lo then 1 else 0)
            + if junction_end cells.(len - 1) dir_hi then 1 else 0
          in
          let serves_tap =
            Array.exists
              (fun (t : Component.trap) ->
                Array.exists (fun c -> Ion_util.Coord.equal c t.Component.tap) cells)
              traps
          in
          if ends < 2 && not serves_tap then incr dead_ends)
        (Component.segments comp);
      if !dead_ends > 0 then
        emit
          (F.make ~pass ~kind:"dead-end" F.Warning "%d dead-end channel segment(s) serve no trap: wasted fabric area"
             !dead_ends);
      F.sort !findings

let is_clean ?num_qubits lay = F.is_clean (check ?num_qubits lay)
