(** Fabric linting: structural diagnostics for user-authored fabrics.

    ASCII fabrics are easy to mistype; beyond the hard errors
    {!Layout.parse} and {!Component.extract} reject, this pass finds the
    soft problems that make mapping fail or perform badly:

    - disconnected islands: traps that cannot reach each other over the
      turn-aware routing graph;
    - dead-end channels: segments with fewer than two junction endpoints
      (legal, but they only serve taps and waste fabric area otherwise);
    - starved regions: a fabric whose trap count cannot host the intended
      qubit count;
    - turn-free fabrics (no junctions): fine for linear machines, flagged so
      grid users notice a parse surprise.

    Findings are reported in the shared {!Analysis_finding.t} currency
    (pass ["fabric"]) so the CLI, the [analysis] library and CI render them
    uniformly; [Analysis.Fabric_check] absorbs this pass and extends it with
    whole-mapper context (bottleneck cut vertices, transit capacity). *)

val check : ?num_qubits:int -> Layout.t -> Analysis_finding.t list
(** All findings, errors first.  [num_qubits] enables the capacity check. *)

val is_clean : ?num_qubits:int -> Layout.t -> bool
(** No [Error]-severity findings. *)

val capacity_error : num_qubits:int -> Component.t -> string option
(** The message of the trap-starvation error ([num_qubits] exceeding the
    trap count), if it applies — the single home of that check; the mapper
    front door ({!Mapper.create}) delegates here instead of duplicating
    the comparison. *)

val pp_finding : Format.formatter -> Analysis_finding.t -> unit
