(** Turn-aware routing graph over the fabric (paper Section IV.B, Figure 5c).

    Every junction is split into a {e horizontal} and a {e vertical} node
    joined by a turn edge whose cost is the technology's turn delay, so
    Dijkstra naturally prefers the path with fewer turns among equal
    Manhattan-distance alternatives.  Channel cells contribute one node each
    (their orientation is fixed); traps are leaf nodes linked to their tap
    cell.

    Edges carry the resource they consume so the router can weight them by
    live congestion (Eq. 2) and the simulator can account occupancy:
    - [Chan s] — a one-cell step inside channel segment [s];
    - [Junc j] — a one-cell step into junction [j];
    - [Turn j] — a 90-degree rotation inside junction [j];
    - [Tap t] — the hop between trap [t] and its tap cell.

    Turns outside junctions are impossible: perpendicular channels meeting
    without a junction are not connected. *)

type node = int

type edge_kind = Chan of int | Junc of int | Turn of int | Tap of int

type edge = { dst : node; kind : edge_kind }

type t

val build : Component.t -> t

val component : t -> Component.t
val num_nodes : t -> int

val adj : t -> node -> edge list
(** The list view of a node's out-edges, rebuilt per call — fine for
    diagnostics and tests; hot router loops should use the CSR accessors
    below, which allocate nothing. *)

(** {2 CSR accessors}

    Adjacency is stored in compressed-sparse-row form: the out-edges of node
    [n] are the flat indices [succ_start t n .. succ_stop t n - 1], each
    giving a destination node and an edge kind. *)

val succ_start : t -> node -> int
val succ_stop : t -> node -> int
val succ_dst : t -> int -> node
val succ_kind : t -> int -> edge_kind

val edge_at : t -> int -> edge
(** The edge record at a CSR index — allocates; used to materialize the
    O(path) result of a search. *)

val trap_node : t -> int -> node
(** Node of a trap id — route endpoints. *)

val node_pos : t -> node -> Ion_util.Coord.t

val node_orientation : t -> node -> Cell.orientation option
(** [None] for trap nodes. *)

val pp_node : t -> Format.formatter -> node -> unit

val num_edges : t -> int
(** Directed edge count, for diagnostics. *)
