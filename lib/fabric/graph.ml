module Coord = Ion_util.Coord

type node = int

type edge_kind = Chan of int | Junc of int | Turn of int | Tap of int

type edge = { dst : node; kind : edge_kind }

(* Adjacency in CSR (compressed sparse row) form: the out-edges of node [n]
   occupy indices [row_start.(n) .. row_start.(n+1) - 1] of the flat
   [edge_dst]/[edge_kinds] arrays.  The router's Dijkstra/A* inner loop scans
   these with plain int indexing — no list traversal and no per-query edge
   allocation; [adj] rebuilds the list view for diagnostics and tests. *)
type t = {
  component : Component.t;
  num_nodes : int;
  row_start : int array; (* length num_nodes + 1 *)
  edge_dst : int array;
  edge_kinds : edge_kind array;
  trap_nodes : node array;
  positions : Coord.t array;
  orientations : Cell.orientation option array;
}

let component t = t.component
let num_nodes t = t.num_nodes

let adj t n =
  let acc = ref [] in
  for i = t.row_start.(n + 1) - 1 downto t.row_start.(n) do
    acc := { dst = t.edge_dst.(i); kind = t.edge_kinds.(i) } :: !acc
  done;
  !acc

let succ_start t n = t.row_start.(n)
let succ_stop t n = t.row_start.(n + 1)
let succ_dst t i = t.edge_dst.(i)
let succ_kind t i = t.edge_kinds.(i)
let edge_at t i = { dst = t.edge_dst.(i); kind = t.edge_kinds.(i) }

let trap_node t tid = t.trap_nodes.(tid)
let node_pos t n = t.positions.(n)
let node_orientation t n = t.orientations.(n)

let pp_node t ppf n =
  let pos = t.positions.(n) in
  let o = match t.orientations.(n) with Some Cell.Horizontal -> "H" | Some Cell.Vertical -> "V" | None -> "T" in
  Format.fprintf ppf "%a%s" Coord.pp pos o

let num_edges t = Array.length t.edge_dst

(* node numbering: channel cell -> 1 node; junction cell -> H node then
   V node; trap -> 1 node *)
let build comp =
  let lay = Component.layout comp in
  let chan_node = Coord.Tbl.create 256 in
  let junc_node_h = Coord.Tbl.create 64 in
  let junc_node_v = Coord.Tbl.create 64 in
  let next = ref 0 in
  let fresh () =
    let n = !next in
    incr next;
    n
  in
  let positions = ref [] in
  let orientations = ref [] in
  let register pos o =
    let n = fresh () in
    positions := pos :: !positions;
    orientations := o :: !orientations;
    n
  in
  Layout.iter lay (fun c cell ->
      match cell with
      | Cell.Channel o -> Coord.Tbl.replace chan_node c (register c (Some o))
      | Cell.Junction ->
          Coord.Tbl.replace junc_node_h c (register c (Some Cell.Horizontal));
          Coord.Tbl.replace junc_node_v c (register c (Some Cell.Vertical))
      | Cell.Empty | Cell.Trap -> ());
  let traps = Component.traps comp in
  let trap_nodes =
    Array.map (fun (tr : Component.trap) -> register tr.Component.tpos None) traps
  in
  let n = !next in
  let adj = Array.make n [] in
  let add_edge src dst kind = adj.(src) <- { dst; kind } :: adj.(src) in
  (* node of a walkable cell when approached along [o]; junctions expose the
     matching orientation node *)
  let node_for c o =
    match Layout.get lay c with
    | Cell.Channel co when co = o -> Coord.Tbl.find_opt chan_node c
    | Cell.Channel _ -> None
    | Cell.Junction ->
        Coord.Tbl.find_opt (if o = Cell.Horizontal then junc_node_h else junc_node_v) c
    | Cell.Empty | Cell.Trap -> None
  in
  (* the step cost of entering cell [c]: channel or junction resource *)
  let entry_kind c =
    match Layout.get lay c with
    | Cell.Channel _ -> (
        match Component.segment_at comp c with Some s -> Some (Chan s) | None -> None)
    | Cell.Junction -> (
        match Component.junction_at comp c with Some j -> Some (Junc j) | None -> None)
    | Cell.Empty | Cell.Trap -> None
  in
  (* movement edges: for each walkable cell, connect to east and south
     neighbours along the corresponding orientation (both directions) *)
  Layout.iter lay (fun c cell ->
      if Cell.is_walkable cell then
        List.iter
          (fun dir ->
            let o = Cell.orientation_of_dir dir in
            let c' = Coord.step c dir in
            match (node_for c o, node_for c' o, entry_kind c', entry_kind c) with
            | Some a, Some b, Some kb, Some ka ->
                add_edge a b kb;
                add_edge b a ka
            | _ -> ())
          [ Coord.East; Coord.South ]);
  (* turn edges inside junctions *)
  Layout.iter lay (fun c cell ->
      if Cell.equal cell Cell.Junction then
        match (Coord.Tbl.find_opt junc_node_h c, Coord.Tbl.find_opt junc_node_v c, Component.junction_at comp c) with
        | Some h, Some v, Some j ->
            add_edge h v (Turn j);
            add_edge v h (Turn j)
        | _ -> ());
  (* tap edges: trap <-> its tap cell; junction taps connect to both
     orientation nodes.  Leaving the trap steps INTO the tap cell, so that
     direction consumes the cell's channel/junction resource; only the hop
     into the trap is a free Tap edge. *)
  Array.iteri
    (fun tid (tr : Component.trap) ->
      let tn = trap_nodes.(tid) in
      let link cell_node =
        (match entry_kind tr.Component.tap with
        | Some kind -> add_edge tn cell_node kind
        | None -> add_edge tn cell_node (Tap tid));
        add_edge cell_node tn (Tap tid)
      in
      match Layout.get lay tr.Component.tap with
      | Cell.Channel o -> (
          match node_for tr.Component.tap o with Some cn -> link cn | None -> ())
      | Cell.Junction ->
          Option.iter link (Coord.Tbl.find_opt junc_node_h tr.Component.tap);
          Option.iter link (Coord.Tbl.find_opt junc_node_v tr.Component.tap)
      | Cell.Empty | Cell.Trap -> ())
    traps;
  (* pack the per-node lists into CSR, preserving each node's list order *)
  let row_start = Array.make (n + 1) 0 in
  for src = 0 to n - 1 do
    row_start.(src + 1) <- row_start.(src) + List.length adj.(src)
  done;
  let total = row_start.(n) in
  let edge_dst = Array.make total 0 in
  let edge_kinds = Array.make total (Tap 0) in
  for src = 0 to n - 1 do
    List.iteri
      (fun i e ->
        edge_dst.(row_start.(src) + i) <- e.dst;
        edge_kinds.(row_start.(src) + i) <- e.kind)
      adj.(src)
  done;
  {
    component = comp;
    num_nodes = n;
    row_start;
    edge_dst;
    edge_kinds;
    trap_nodes;
    positions = Array.of_list (List.rev !positions);
    orientations = Array.of_list (List.rev !orientations);
  }
