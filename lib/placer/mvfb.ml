type direction = Forward | Backward

type outcome = {
  direction : direction;
  result : Simulator.Engine.result;
  initial_placement : int array;
  latencies : float list;
  runs : int;
  seeds_used : int;
  evaluations : int;
}

type best = {
  b_latency : float;
  b_direction : direction;
  b_result : Simulator.Engine.result;
  b_initial : int array;
}

(* Outcome of one seed's local forward/backward search.  Given its initial
   placement the search is deterministic (no further randomness), so seeds
   run sequentially or fan out on a domain pool with identical results, and
   seeds sharing an initial placement can share one search. *)
type seed_outcome = {
  s_best : best option;
  s_latencies : float list; (* in run order *)
  s_runs : int;
  s_error : Simulator.Engine.error option;
}

let search_seed ~patience ~max_runs_per_seed ~forward ~backward initial =
  let best = ref None in
  let latencies = ref [] in
  let runs = ref 0 in
  let error = ref None in
  let consider latency direction result initial =
    latencies := latency :: !latencies;
    incr runs;
    let better = match !best with None -> true | Some b -> latency < b.b_latency in
    if better then
      best := Some { b_latency = latency; b_direction = direction; b_result = result; b_initial = initial }
  in
  (* local neighborhood search around one random center placement *)
  let placement = ref initial in
  let local_best = ref Float.infinity in
  let no_improve = ref 0 in
  let local_runs = ref 0 in
  let note latency =
    if latency < !local_best -. 1e-9 then begin
      local_best := latency;
      no_improve := 0
    end
    else incr no_improve
  in
  while !error = None && !no_improve < patience && !local_runs < max_runs_per_seed do
    match forward !placement with
    | Error e -> error := Some e
    | Ok rf ->
        incr local_runs;
        consider rf.Simulator.Engine.latency Forward rf !placement;
        note rf.Simulator.Engine.latency;
        if !no_improve < patience && !local_runs < max_runs_per_seed then begin
          match backward rf.Simulator.Engine.final_placement with
          | Error e -> error := Some e
          | Ok rb ->
              incr local_runs;
              consider rb.Simulator.Engine.latency Backward rb rf.Simulator.Engine.final_placement;
              note rb.Simulator.Engine.latency;
              placement := rb.Simulator.Engine.final_placement
        end
  done;
  { s_best = !best; s_latencies = List.rev !latencies; s_runs = !runs; s_error = !error }

let search ?pool ?prescreen ~seed ~m ?(patience = 3) ?(max_runs_per_seed = 64) ~forward ~backward
    comp ~num_qubits =
  if m < 1 then Error (Simulator.Engine.Invalid "Mvfb.search: need at least one seed")
  else
    match prescreen with
    | Some (k, _) when k < 1 ->
        Error (Simulator.Engine.Invalid "Mvfb.search: prescreen_k must be at least 1")
    | _ ->
        (* Seed randomness is a pure function of (seed, seed index): draw all
           initial placements up front, then dedup and (optionally) pre-screen
           before the expensive local searches. *)
        let initials =
          Array.init m (fun i ->
              let rng = Ion_util.Rng.derive seed ~index:i in
              Center.place_permuted rng comp ~num_qubits)
        in
        let amap f arr =
          match pool with Some p -> Ion_util.Domain_pool.map p f arr | None -> Array.map f arr
        in
        let canon = Monte_carlo.canonicalize initials in
        let uniques = Array.of_seq (Seq.filter (fun i -> canon.(i) = i) (Seq.init m Fun.id)) in
        let searched =
          match prescreen with
          | Some (k, estimate) when k < Array.length uniques ->
              let scores = amap (fun i -> estimate initials.(i)) uniques in
              Monte_carlo.select_top_k ~k scores uniques
          | _ -> uniques
        in
        let one = search_seed ~patience ~max_runs_per_seed ~forward ~backward in
        let outcomes = amap (fun i -> one initials.(i)) searched in
        let outcome_of = Hashtbl.create (Array.length searched) in
        Array.iteri (fun slot i -> Hashtbl.add outcome_of i outcomes.(slot)) searched;
        (* Merge in seed order: latencies concatenate, the first error wins
           and latency ties keep the earliest seed — the sequential loop
           visits runs in exactly this order.  Duplicate seeds replay their
           canonical seed's search, pre-screened-out seeds contribute
           nothing. *)
        let best = ref None in
        let latencies_rev = ref [] in
        let runs = ref 0 in
        let error = ref None in
        for i = 0 to m - 1 do
          if !error = None then
            match Hashtbl.find_opt outcome_of canon.(i) with
            | None -> ()
            | Some s ->
                List.iter (fun l -> latencies_rev := l :: !latencies_rev) s.s_latencies;
                runs := !runs + s.s_runs;
                (match s.s_best with
                | None -> ()
                | Some b ->
                    let better =
                      match !best with None -> true | Some p -> b.b_latency < p.b_latency
                    in
                    if better then best := Some b);
                (match s.s_error with Some e -> error := Some e | None -> ())
        done;
        let evaluations = Array.fold_left (fun acc s -> acc + s.s_runs) 0 outcomes in
        (match (!error, !best) with
        | Some e, _ -> Error e
        | None, None -> Error (Simulator.Engine.Invalid "Mvfb.search: no successful run")
        | None, Some b ->
            Ok
              {
                direction = b.b_direction;
                result = b.b_result;
                initial_placement = b.b_initial;
                latencies = List.rev !latencies_rev;
                runs = !runs;
                seeds_used = m;
                evaluations;
              })
