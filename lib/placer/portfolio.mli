(** A racing portfolio of placement strategies.

    Different placers win on different circuits (MVFB exploits QIDG
    structure, Monte-Carlo wins on small dense programs, delta-annealing
    wins when the move space is large — cf. the solver-portfolio framing of
    Yazdani et al., arXiv:1306.2037).  [race] runs every strategy —
    typically fanned over an [Ion_util.Domain_pool] — and keeps the best
    routed result.

    Determinism contract: each strategy must be deterministic given its
    inputs — either the per-index stream [race] hands it
    ([Rng.derive seed ~index], via {!Ion_util.Domain_pool.map_seeded}) or
    its own internal seed — and never read shared mutable state.  Fan-out
    preserves order and the winner is the lowest [(latency, list index)],
    so the outcome is bit-identical at any job count. *)

type strategy_outcome = {
  placement : int array;  (** input placement of the winning run *)
  result : Simulator.Engine.result;
  direction : Mvfb.direction;
      (** [Backward] when an MVFB strategy won on a backward run — the
          caller must time-reverse the trace, as for {!Mvfb.search} *)
  evaluations : int;  (** routed engine evaluations the strategy spent *)
  latencies : float list;  (** routed latencies, in evaluation order *)
  truncated : bool;
}

type strategy = {
  name : string;
  run : rng:Ion_util.Rng.t -> (strategy_outcome, Simulator.Engine.error) result;
      (** [rng] is the strategy's slot in the race's derived-stream space;
          strategies carrying their own seeding discipline (the classic
          placers, matching their [map_*] counterparts bit-for-bit) may
          ignore it *)
}

type entry = {
  entry_name : string;
  entry_outcome : (strategy_outcome, Simulator.Engine.error) result;
}

type outcome = {
  winner : string;  (** name of the winning strategy *)
  best : strategy_outcome;
  entries : entry list;  (** every strategy's outcome, in input order *)
}

val race :
  ?pool:Ion_util.Domain_pool.t ->
  seed:int ->
  strategy list ->
  (outcome, Simulator.Engine.error) result
(** Runs every strategy (in parallel across [pool] when given, via
    {!Ion_util.Domain_pool.map_seeded} with [seed] as the fan-out root)
    and returns the best successful outcome; failed strategies stay
    visible in [entries].  [Error] only when the list is empty ([Invalid])
    or every strategy failed (the first failure, in input order). *)
