(* Race independent placement strategies across a domain pool and keep the
   best routed result.  Strategies fan out through Domain_pool.map_seeded
   (the shared seeded fan-out also behind fault campaigns and the service
   scheduler); each receives the per-index derived stream but may ignore it
   and seed itself, so the race is a pure function of (strategy list, seed):
   order is preserved, the winner is the lowest (latency, list index), and
   the outcome is bit-identical at any job count. *)

type strategy_outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  direction : Mvfb.direction;
  evaluations : int;
  latencies : float list;
  truncated : bool;
}

type strategy = {
  name : string;
  run : rng:Ion_util.Rng.t -> (strategy_outcome, Simulator.Engine.error) result;
}

type entry = {
  entry_name : string;
  entry_outcome : (strategy_outcome, Simulator.Engine.error) result;
}

type outcome = { winner : string; best : strategy_outcome; entries : entry list }

let race ?pool ~seed strategies =
  match strategies with
  | [] -> Error (Simulator.Engine.Invalid "Portfolio.race: no strategies")
  | _ ->
      let arr = Array.of_list strategies in
      let jobs = match pool with Some p -> Ion_util.Domain_pool.jobs p | None -> 1 in
      let outcomes =
        Ion_util.Domain_pool.map_seeded ?pool ~jobs ~seed
          (fun ~index:_ ~rng s -> s.run ~rng)
          arr
      in
      let entries =
        Array.to_list
          (Array.map2
             (fun s o -> { entry_name = s.name; entry_outcome = o })
             arr outcomes)
      in
      let best = ref None in
      Array.iteri
        (fun i o ->
          match o with
          | Error _ -> ()
          | Ok r -> (
              match !best with
              | Some (_, br) when br.result.Simulator.Engine.latency
                                  <= r.result.Simulator.Engine.latency ->
                  ()
              | _ -> best := Some (i, r)))
        outcomes;
      (match !best with
      | Some (i, r) -> Ok { winner = arr.(i).name; best = r; entries }
      | None -> (
          (* every strategy failed: surface the first failure *)
          match outcomes.(0) with
          | Error e -> Error e
          | Ok _ -> assert false))
