type outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  evaluated : int;
  worst_latency : float;
}

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let choose n k =
  if k > n then 0
  else begin
    (* C(n,k) via the multiplicative formula to limit overflow *)
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let search_space ~candidate_traps ~num_qubits =
  choose candidate_traps num_qubits * factorial num_qubits

(* enumerate injective assignments of [k] slots from [pool]; calls [f] with a
   scratch array that must not be retained *)
let iter_injections pool k f =
  let n = Array.length pool in
  let used = Array.make n false in
  let slot = Array.make k 0 in
  let rec go depth =
    if depth = k then f slot
    else
      for i = 0 to n - 1 do
        if not used.(i) then begin
          used.(i) <- true;
          slot.(depth) <- pool.(i);
          go (depth + 1);
          used.(i) <- false
        end
      done
  in
  if k > 0 then go 0 else f slot

let search ?candidate_traps ?(max_evaluations = 50_000) ~evaluate comp ~num_qubits =
  let candidate_traps = Option.value ~default:(num_qubits + 1) candidate_traps in
  let invalid msg = Error (Simulator.Engine.Invalid msg) in
  if candidate_traps < num_qubits then
    invalid "Exhaustive.search: fewer candidate traps than qubits"
  else begin
    let space = search_space ~candidate_traps ~num_qubits in
    if space > max_evaluations then
      invalid
        (Printf.sprintf "Exhaustive.search: %d placements exceed the cap of %d" space max_evaluations)
    else
      match Center.center_traps comp candidate_traps with
      | exception Invalid_argument msg -> invalid msg
      | traps ->
          let pool = Array.of_list traps in
          let best = ref None in
          let worst = ref neg_infinity in
          let evaluated = ref 0 in
          let error = ref None in
          (try
             iter_injections pool num_qubits (fun slot ->
                 if !error = None then begin
                   let placement = Array.copy slot in
                   match evaluate placement with
                   | Error e ->
                       error := Some e;
                       raise Exit
                   | Ok r ->
                       incr evaluated;
                       worst := Float.max !worst r.Simulator.Engine.latency;
                       let better =
                         match !best with
                         | None -> true
                         | Some (_, prev) -> r.Simulator.Engine.latency < prev.Simulator.Engine.latency
                       in
                       if better then best := Some (placement, r)
                 end)
           with Exit -> ());
          (match (!error, !best) with
          | Some e, _ -> Error e
          | None, None -> Error (Simulator.Engine.Invalid "Exhaustive.search: empty search space")
          | None, Some (placement, result) ->
              Ok { placement; result; evaluated = !evaluated; worst_latency = !worst })
  end
