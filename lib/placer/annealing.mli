(** Simulated-annealing placer — the classical VLSI-style baseline.

    The paper contrasts MVFB with "standard VLSI placement algorithms";
    this is that standard: start from a center placement, repeatedly propose
    a local move (swap two qubits, or relocate one qubit to a free nearby
    trap), accept improvements always and degradations with probability
    [exp (-delta / temperature)], cooling geometrically.  The cost of a
    placement is the full schedule-and-route latency, like every other
    placer here, so the comparison with MVFB is apples to apples at equal
    evaluation counts. *)

module Proposal : sig
  (** O(1) allocation-free neighbour proposal over a candidate trap pool:
      occupancy bitset plus a swap-remove free-trap array, replacing the
      historical per-proposal [List.filter]/[List.nth] scan. *)

  type move =
    | Swap of int * int  (** exchange the traps of two distinct qubits *)
    | Relocate of int * int  (** move a qubit to a currently free candidate trap *)
    | Stay  (** no free candidate trap — the placement is re-evaluated as-is *)

  type t

  val create : num_traps:int -> int array -> int array -> t
  (** [create ~num_traps pool placement] — occupancy from [placement], free
      list = pool traps not occupied.
      @raise Invalid_argument on an out-of-range or duplicated trap. *)

  val num_free : t -> int
  val is_free : t -> int -> bool

  val draw : t -> Ion_util.Rng.t -> num_qubits:int -> move
  (** Draw a move without touching occupancy: a fair coin chooses swap vs
      relocate (the coin is only spent when [num_qubits >= 2]); swaps pick
      two distinct qubits uniformly, relocations pick a qubit and a free
      candidate trap uniformly ([Stay] when none is free). *)

  val relocate : t -> src:int -> dst:int -> unit
  (** Commit an accepted relocation.  Swaps leave the occupied-trap set
      unchanged and need no commit; rejected moves need no revert because
      [draw] never mutates. *)
end

type outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  evaluations : int;
  accepted : int;  (** accepted proposals (including improvements) *)
  latencies : float list;  (** cost of every evaluated placement, in order *)
  truncated : bool;
      (** the anneal stopped early on an evaluation or wall-clock budget —
          the result is the best placement seen so far *)
}

val search :
  ?pool:Ion_util.Domain_pool.t ->
  ?prescreen:int * (int array -> float) ->
  ?max_evals:int ->
  ?out_of_time:(unit -> bool) ->
  rng:Ion_util.Rng.t ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?evaluations:int ->
  ?candidate_traps:int ->
  evaluate:(int array -> (Simulator.Engine.result, Simulator.Engine.error) result) ->
  Fabric.Component.t ->
  num_qubits:int ->
  (outcome, Simulator.Engine.error) result
(** Defaults: temperature 100 us, cooling 0.95 per step, 60 evaluations,
    candidate pool of [3 * num_qubits] nearest-center traps.  [Error] on
    invalid parameters (as {!Simulator.Engine.Invalid}) or a failing
    evaluation.

    Budgets make the anneal anytime: [max_evals] deterministically caps the
    cooling schedule length, and [out_of_time] is polled before each
    evaluation to stop on a wall-clock deadline.  The start placement is
    always evaluated; a budget cut sets [truncated].

    [prescreen = (n, estimate)] draws [n] random starts and anneals from the
    best-estimated one instead of the first draw; the starts consume the rng
    before any fan-out and estimate ties keep the earliest draw, so the
    outcome is deterministic and identical for any [pool] size.  Without
    [prescreen] the rng stream is untouched and the search behaves exactly
    as before. *)

type delta_outcome = {
  placement : int array;  (** best routed placement *)
  result : Simulator.Engine.result;  (** its routed result *)
  moves : int;  (** delta-model proposals evaluated *)
  accepted : int;
  engine_evals : int;  (** routed evaluations (start + incumbents) *)
  best_estimate : float;  (** best delta-model latency reached *)
  max_drift : float;
      (** largest correction any periodic {!Estimator.Delta.resync} made —
          expected [0.], the incremental updates being bit-exact *)
  curve : (int * float) list;
      (** (move index, delta-model incumbent latency) at every improvement *)
  latencies : float list;  (** routed latencies, in evaluation order *)
  truncated : bool;
}

val search_delta :
  ?max_evals:int ->
  ?out_of_time:(unit -> bool) ->
  rng:Ion_util.Rng.t ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?moves:int ->
  ?route_every:int ->
  ?resync_every:int ->
  ?candidate_traps:int ->
  model:Estimator.Model.t ->
  evaluate:(int array -> (Simulator.Engine.result, Simulator.Engine.error) result) ->
  Fabric.Component.t ->
  num_qubits:int ->
  (delta_outcome, Simulator.Engine.error) result
(** Delta-evaluated annealing: the same acceptance rule as {!search}, but
    each proposal is scored by {!Estimator.Delta.apply_swap}/[apply_move]
    in O(affected gates) — rejected moves cost one [undo] — so the move
    budget runs to the millions where {!search} runs to tens.  Only the
    start and periodically-improved incumbents (every [route_every] moves,
    default [moves / 4], plus a final pass) pay a routed [evaluate]; the
    returned result is the best {e routed} placement.  Every [resync_every]
    moves (default 8192) the delta state is rebuilt from scratch to bound
    drift; the worst correction is reported as [max_drift].

    Defaults: temperature 100 us, [moves] 20_000, cooling set so the
    temperature decays to 1e-4 of its initial value across the move budget.
    [max_evals] caps routed evaluations; [out_of_time] is polled every 512
    moves.  Deterministic given [rng]: a pure function of the model,
    component and generator state. *)
