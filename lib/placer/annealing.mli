(** Simulated-annealing placer — the classical VLSI-style baseline.

    The paper contrasts MVFB with "standard VLSI placement algorithms";
    this is that standard: start from a center placement, repeatedly propose
    a local move (swap two qubits, or relocate one qubit to a free nearby
    trap), accept improvements always and degradations with probability
    [exp (-delta / temperature)], cooling geometrically.  The cost of a
    placement is the full schedule-and-route latency, like every other
    placer here, so the comparison with MVFB is apples to apples at equal
    evaluation counts. *)

type outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  evaluations : int;
  accepted : int;  (** accepted proposals (including improvements) *)
  latencies : float list;  (** cost of every evaluated placement, in order *)
  truncated : bool;
      (** the anneal stopped early on an evaluation or wall-clock budget —
          the result is the best placement seen so far *)
}

val search :
  ?pool:Ion_util.Domain_pool.t ->
  ?prescreen:int * (int array -> float) ->
  ?max_evals:int ->
  ?out_of_time:(unit -> bool) ->
  rng:Ion_util.Rng.t ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?evaluations:int ->
  ?candidate_traps:int ->
  evaluate:(int array -> (Simulator.Engine.result, Simulator.Engine.error) result) ->
  Fabric.Component.t ->
  num_qubits:int ->
  (outcome, Simulator.Engine.error) result
(** Defaults: temperature 100 us, cooling 0.95 per step, 60 evaluations,
    candidate pool of [3 * num_qubits] nearest-center traps.  [Error] on
    invalid parameters (as {!Simulator.Engine.Invalid}) or a failing
    evaluation.

    Budgets make the anneal anytime: [max_evals] deterministically caps the
    cooling schedule length, and [out_of_time] is polled before each
    evaluation to stop on a wall-clock deadline.  The start placement is
    always evaluated; a budget cut sets [truncated].

    [prescreen = (n, estimate)] draws [n] random starts and anneals from the
    best-estimated one instead of the first draw; the starts consume the rng
    before any fan-out and estimate ties keep the earliest draw, so the
    outcome is deterministic and identical for any [pool] size.  Without
    [prescreen] the rng stream is untouched and the search behaves exactly
    as before. *)
