(** Multi-start Variable-length Forward/Backward placer (paper Section IV.A).

    Quantum computations are reversible: executing the uncompute graph (UIDG)
    backward from the final placement of a forward run yields a new input
    placement.  MVFB exploits this.  For each of [m] random center-placement
    seeds it alternates forward runs (QIDG, schedule S) and backward runs
    (UIDG, under the reversed schedule), feeding each run's final placement to the
    next, until the best latency seen in the local search has not improved
    for [patience] consecutive runs.  The reported solution is the best
    forward or backward computation over all seeds — a backward solution's
    control trace must be time-reversed to execute (the caller does this, see
    {!Simulator.Trace.reverse}), and its {e final} placement is the forward
    input placement.

    Unlike standard VLSI placers, MVFB is schedule-aware: the cost of a
    placement is the measured latency of the full scheduled-and-routed run,
    not a netlist wirelength proxy.

    The [m] seeds are independent local searches whose randomness is derived
    from [(seed, seed index)] with {!Ion_util.Rng.derive}; fanning them out
    on a {!Ion_util.Domain_pool.t} returns bit-identical outcomes to the
    sequential search.

    Seeds drawing an identical initial placement share one local search
    (the search is deterministic given its start), with reported run counts
    and latency lists replayed per seed so outcomes are unchanged;
    [evaluations] counts the engine calls actually made.  With [?prescreen],
    initial placements are scored by the estimate function and only the [k]
    best-estimated unique seeds are locally searched. *)

type direction = Forward | Backward

type outcome = {
  direction : direction;
  result : Simulator.Engine.result;  (** the winning run, as executed *)
  initial_placement : int array;  (** input placement of the winning run *)
  latencies : float list;  (** latency of every placement run, in order *)
  runs : int;  (** total placement runs — sizes the MC comparison *)
  seeds_used : int;
  evaluations : int;  (** full engine evaluations actually performed *)
}

val search :
  ?pool:Ion_util.Domain_pool.t ->
  ?prescreen:int * (int array -> float) ->
  seed:int ->
  m:int ->
  ?patience:int ->
  ?max_runs_per_seed:int ->
  forward:(int array -> (Simulator.Engine.result, Simulator.Engine.error) result) ->
  backward:(int array -> (Simulator.Engine.result, Simulator.Engine.error) result) ->
  Fabric.Component.t ->
  num_qubits:int ->
  (outcome, Simulator.Engine.error) result
(** [patience] defaults to 3 (the paper's stopping rule); [max_runs_per_seed]
    (default 64) bounds pathological non-converging seeds.  [Error] on
    [m < 1], a [prescreen] with [k < 1] (both as {!Simulator.Engine.Invalid}),
    or when an evaluation fails (the first failure in seed order is
    reported).  [prescreen = (k, estimate)]
    locally searches only the [k] best-estimated unique seeds; [estimate],
    [forward], and [backward] must be safe to call from several domains at
    once when a multi-domain [pool] is supplied. *)
