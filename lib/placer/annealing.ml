module Rng = Ion_util.Rng

type outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  evaluations : int;
  accepted : int;
  latencies : float list;
  truncated : bool;
}

(* propose a neighbour: swap two qubits' traps, or move one qubit to an
   unoccupied candidate trap *)
let propose rng pool placement =
  let nq = Array.length placement in
  let next = Array.copy placement in
  if nq >= 2 && Rng.bool rng then begin
    let i = Rng.int rng nq in
    let j = (i + 1 + Rng.int rng (nq - 1)) mod nq in
    let tmp = next.(i) in
    next.(i) <- next.(j);
    next.(j) <- tmp;
    next
  end
  else begin
    let i = Rng.int rng nq in
    let free = Array.to_list pool |> List.filter (fun t -> not (Array.exists (( = ) t) placement)) in
    match free with
    | [] -> next
    | _ ->
        next.(i) <- List.nth free (Rng.int rng (List.length free));
        next
  end

(* Draw [n] random starts and return the best-estimated one (ties keep the
   earliest draw).  The draws consume the rng sequentially before any
   fan-out, and the estimates are pure, so the choice is deterministic for
   any pool size. *)
let prescreen_start ?domain_pool ~rng ~n ~estimate comp ~num_qubits =
  let candidates = Array.init n (fun _ -> Center.place_permuted rng comp ~num_qubits) in
  let amap =
    match domain_pool with Some p -> Ion_util.Domain_pool.map p | None -> Array.map
  in
  let scores = amap estimate candidates in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if scores.(i) < scores.(!best) then best := i
  done;
  candidates.(!best)

let search ?pool:domain_pool ?prescreen ?max_evals ?(out_of_time = fun () -> false) ~rng
    ?(initial_temperature = 100.0) ?(cooling = 0.95) ?(evaluations = 60) ?candidate_traps
    ~evaluate comp ~num_qubits =
  let candidate_traps = Option.value ~default:(3 * num_qubits) candidate_traps in
  let invalid msg = Error (Simulator.Engine.Invalid msg) in
  (* deterministic evaluation budget: cap the schedule length up front *)
  let capped = match max_evals with Some cap -> max 1 cap < evaluations | None -> false in
  let evaluations =
    match max_evals with Some cap -> min evaluations (max 1 cap) | None -> evaluations
  in
  if initial_temperature <= 0.0 || cooling <= 0.0 || cooling >= 1.0 then
    invalid "Annealing.search: bad temperature schedule"
  else if evaluations < 1 then invalid "Annealing.search: need at least one evaluation"
  else if candidate_traps < num_qubits then invalid "Annealing.search: candidate pool too small"
  else if (match prescreen with Some (n, _) -> n < 1 | None -> false) then
    invalid "Annealing.search: prescreen candidates must be at least 1"
  else begin
    match Center.center_traps comp candidate_traps with
    | exception Invalid_argument msg -> invalid msg
    | pool_list -> (
        let pool = Array.of_list pool_list in
        let current =
          ref
            (match prescreen with
            | None -> Center.place_permuted rng comp ~num_qubits
            | Some (n, estimate) ->
                prescreen_start ?domain_pool ~rng ~n ~estimate comp ~num_qubits)
        in
        match evaluate !current with
        | Error _ as e -> e
        | Ok r0 ->
            let current_cost = ref r0.Simulator.Engine.latency in
            let best = ref (Array.copy !current, r0) in
            let best_cost = ref !current_cost in
            let latencies = ref [ !current_cost ] in
            let accepted = ref 0 in
            let temperature = ref initial_temperature in
            let error = ref None in
            let evals = ref 1 in
            let timed_out = ref false in
            while !error = None && !evals < evaluations && not !timed_out do
              if out_of_time () then timed_out := true
              else begin
              let candidate = propose rng pool !current in
              (match evaluate candidate with
              | Error e -> error := Some e
              | Ok r ->
                  incr evals;
                  let cost = r.Simulator.Engine.latency in
                  latencies := cost :: !latencies;
                  let delta = cost -. !current_cost in
                  let accept =
                    delta <= 0.0 || Rng.float rng 1.0 < exp (-.delta /. Float.max 1e-9 !temperature)
                  in
                  if accept then begin
                    incr accepted;
                    current := candidate;
                    current_cost := cost;
                    if cost < !best_cost then begin
                      best := (Array.copy candidate, r);
                      best_cost := cost
                    end
                  end);
                temperature := !temperature *. cooling
              end
            done;
            (match !error with
            | Some e -> Error e
            | None ->
                let placement, result = !best in
                Ok
                  {
                    placement;
                    result;
                    evaluations = !evals;
                    accepted = !accepted;
                    latencies = List.rev !latencies;
                    truncated = capped || !timed_out;
                  }))
  end
