module Rng = Ion_util.Rng

type outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  evaluations : int;
  accepted : int;
  latencies : float list;
  truncated : bool;
}

(* Occupancy-tracked neighbour proposal: the candidate free traps are a
   maintained array with a trap->slot index, so drawing a move is O(1) and
   allocation-free where the old code filtered the whole pool against the
   whole placement per proposal (O(pool * nq) and a fresh list). *)
module Proposal = struct
  type move =
    | Swap of int * int  (* exchange the traps of two distinct qubits *)
    | Relocate of int * int  (* qubit, currently free candidate trap *)
    | Stay  (* no free candidate trap: evaluate the unchanged placement *)

  type t = {
    occupied : bool array;  (* trap -> hosts an ion *)
    in_pool : bool array;  (* trap -> member of the candidate pool *)
    free : int array;  (* free candidate traps, dense prefix [0, nfree) *)
    slot : int array;  (* trap -> index into [free], -1 when absent *)
    mutable nfree : int;
  }

  let create ~num_traps pool placement =
    let occupied = Array.make num_traps false in
    Array.iter
      (fun p ->
        if p < 0 || p >= num_traps then invalid_arg "Annealing.Proposal.create: trap out of range";
        if occupied.(p) then invalid_arg "Annealing.Proposal.create: duplicate trap assignment";
        occupied.(p) <- true)
      placement;
    let in_pool = Array.make num_traps false in
    let slot = Array.make num_traps (-1) in
    let free = Array.make (Array.length pool) 0 in
    let t = { occupied; in_pool; free; slot; nfree = 0 } in
    Array.iter
      (fun p ->
        in_pool.(p) <- true;
        if not occupied.(p) then begin
          free.(t.nfree) <- p;
          slot.(p) <- t.nfree;
          t.nfree <- t.nfree + 1
        end)
      pool;
    t

  let num_free t = t.nfree
  let is_free t trap = t.slot.(trap) >= 0

  (* Same rng consumption pattern as the historical [propose]: a coin only
     when a swap is possible, then one or two bounded draws; the relocation
     target is uniform over the free candidate traps. *)
  let draw t rng ~num_qubits =
    if num_qubits >= 2 && Rng.bool rng then begin
      let i = Rng.int rng num_qubits in
      let j = (i + 1 + Rng.int rng (num_qubits - 1)) mod num_qubits in
      Swap (i, j)
    end
    else begin
      let i = Rng.int rng num_qubits in
      if t.nfree = 0 then Stay else Relocate (i, t.free.(Rng.int rng t.nfree))
    end

  let add_free t trap =
    t.free.(t.nfree) <- trap;
    t.slot.(trap) <- t.nfree;
    t.nfree <- t.nfree + 1

  let remove_free t trap =
    let s = t.slot.(trap) in
    let last = t.free.(t.nfree - 1) in
    t.free.(s) <- last;
    t.slot.(last) <- s;
    t.slot.(trap) <- -1;
    t.nfree <- t.nfree - 1

  (* Commit an accepted relocation [src -> dst].  Swaps leave the occupied
     trap set unchanged and need no commit. *)
  let relocate t ~src ~dst =
    t.occupied.(src) <- false;
    if t.in_pool.(src) then add_free t src;
    t.occupied.(dst) <- true;
    remove_free t dst
end

(* Draw [n] random starts and return the best-estimated one (ties keep the
   earliest draw).  The draws consume the rng sequentially before any
   fan-out, and the estimates are pure, so the choice is deterministic for
   any pool size. *)
let prescreen_start ?domain_pool ~rng ~n ~estimate comp ~num_qubits =
  let candidates = Array.init n (fun _ -> Center.place_permuted rng comp ~num_qubits) in
  let amap =
    match domain_pool with Some p -> Ion_util.Domain_pool.map p | None -> Array.map
  in
  let scores = amap estimate candidates in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if scores.(i) < scores.(!best) then best := i
  done;
  candidates.(!best)

let search ?pool:domain_pool ?prescreen ?max_evals ?(out_of_time = fun () -> false) ~rng
    ?(initial_temperature = 100.0) ?(cooling = 0.95) ?(evaluations = 60) ?candidate_traps
    ~evaluate comp ~num_qubits =
  let candidate_traps = Option.value ~default:(3 * num_qubits) candidate_traps in
  let invalid msg = Error (Simulator.Engine.Invalid msg) in
  (* deterministic evaluation budget: cap the schedule length up front *)
  let capped = match max_evals with Some cap -> max 1 cap < evaluations | None -> false in
  let evaluations =
    match max_evals with Some cap -> min evaluations (max 1 cap) | None -> evaluations
  in
  if initial_temperature <= 0.0 || cooling <= 0.0 || cooling >= 1.0 then
    invalid "Annealing.search: bad temperature schedule"
  else if evaluations < 1 then invalid "Annealing.search: need at least one evaluation"
  else if candidate_traps < num_qubits then invalid "Annealing.search: candidate pool too small"
  else if (match prescreen with Some (n, _) -> n < 1 | None -> false) then
    invalid "Annealing.search: prescreen candidates must be at least 1"
  else begin
    match Center.center_traps comp candidate_traps with
    | exception Invalid_argument msg -> invalid msg
    | pool_list -> (
        let pool = Array.of_list pool_list in
        let num_traps = Array.length (Fabric.Component.traps comp) in
        let current =
          ref
            (match prescreen with
            | None -> Center.place_permuted rng comp ~num_qubits
            | Some (n, estimate) ->
                prescreen_start ?domain_pool ~rng ~n ~estimate comp ~num_qubits)
        in
        match evaluate !current with
        | Error _ as e -> e
        | Ok r0 ->
            let tracker = Proposal.create ~num_traps pool !current in
            let current_cost = ref r0.Simulator.Engine.latency in
            let best = ref (Array.copy !current, r0) in
            let best_cost = ref !current_cost in
            let latencies = ref [ !current_cost ] in
            let accepted = ref 0 in
            let temperature = ref initial_temperature in
            let error = ref None in
            let evals = ref 1 in
            let timed_out = ref false in
            while !error = None && !evals < evaluations && not !timed_out do
              if out_of_time () then timed_out := true
              else begin
                let move = Proposal.draw tracker rng ~num_qubits in
                let candidate = Array.copy !current in
                (match move with
                | Proposal.Swap (i, j) ->
                    let tmp = candidate.(i) in
                    candidate.(i) <- candidate.(j);
                    candidate.(j) <- tmp
                | Proposal.Relocate (q, trap) -> candidate.(q) <- trap
                | Proposal.Stay -> ());
                (match evaluate candidate with
                | Error e -> error := Some e
                | Ok r ->
                    incr evals;
                    let cost = r.Simulator.Engine.latency in
                    latencies := cost :: !latencies;
                    let delta = cost -. !current_cost in
                    let accept =
                      delta <= 0.0
                      || Rng.float rng 1.0 < exp (-.delta /. Float.max 1e-9 !temperature)
                    in
                    if accept then begin
                      incr accepted;
                      (match move with
                      | Proposal.Relocate (q, dst) ->
                          Proposal.relocate tracker ~src:!current.(q) ~dst
                      | Proposal.Swap _ | Proposal.Stay -> ());
                      current := candidate;
                      current_cost := cost;
                      if cost < !best_cost then begin
                        best := (Array.copy candidate, r);
                        best_cost := cost
                      end
                    end);
                temperature := !temperature *. cooling
              end
            done;
            (match !error with
            | Some e -> Error e
            | None ->
                let placement, result = !best in
                Ok
                  {
                    placement;
                    result;
                    evaluations = !evals;
                    accepted = !accepted;
                    latencies = List.rev !latencies;
                    truncated = capped || !timed_out;
                  }))
  end

(* ------------------------------------------------------------- delta SA *)

type delta_outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  moves : int;
  accepted : int;
  engine_evals : int;
  best_estimate : float;
  max_drift : float;
  curve : (int * float) list;
  latencies : float list;
  truncated : bool;
}

let search_delta ?max_evals ?(out_of_time = fun () -> false) ~rng
    ?(initial_temperature = 100.0) ?cooling ?(moves = 20_000) ?route_every
    ?(resync_every = 8192) ?candidate_traps ~model ~evaluate comp ~num_qubits =
  let candidate_traps = Option.value ~default:(3 * num_qubits) candidate_traps in
  let route_every = Option.value ~default:(max 1 (moves / 4)) route_every in
  (* default schedule: decay to 1e-4 of the initial temperature over the
     whole move budget, whatever its length *)
  let cooling =
    match cooling with
    | Some c -> c
    | None -> exp (log 1e-4 /. float_of_int (max 1 moves))
  in
  let invalid msg = Error (Simulator.Engine.Invalid msg) in
  if initial_temperature <= 0.0 || cooling <= 0.0 || cooling >= 1.0 then
    invalid "Annealing.search_delta: bad temperature schedule"
  else if moves < 1 then invalid "Annealing.search_delta: need at least one move"
  else if route_every < 1 || resync_every < 1 then
    invalid "Annealing.search_delta: bad cadence"
  else if candidate_traps < num_qubits then
    invalid "Annealing.search_delta: candidate pool too small"
  else begin
    match Center.center_traps comp candidate_traps with
    | exception Invalid_argument msg -> invalid msg
    | pool_list -> (
        let pool = Array.of_list pool_list in
        let num_traps = Array.length (Fabric.Component.traps comp) in
        let start = Center.place_permuted rng comp ~num_qubits in
        match evaluate start with
        | Error _ as e -> e
        | Ok r0 ->
            let delta = Estimator.Delta.create model start in
            let tracker = Proposal.create ~num_traps pool start in
            let cur_est = ref (Estimator.Delta.latency delta) in
            let best_est = ref !cur_est in
            let best_place = Array.copy start in
            let best_dirty = ref false in
            let routed_place = ref (Array.copy start) in
            let routed_result = ref r0 in
            let routed_cost = ref r0.Simulator.Engine.latency in
            let eval_cap = match max_evals with Some c -> max 1 c | None -> max_int in
            let engine_evals = ref 1 in
            let latencies = ref [ r0.Simulator.Engine.latency ] in
            let curve = ref [ (0, !cur_est) ] in
            let accepted = ref 0 in
            let temperature = ref initial_temperature in
            let max_drift = ref 0.0 in
            let error = ref None in
            let timed_out = ref false in
            let m = ref 0 in
            (* route the best-estimated incumbent when it changed since the
               last routed evaluation — only improved incumbents pay the
               schedule-and-route cost *)
            let route_incumbent () =
              if !best_dirty && !engine_evals < eval_cap && !error = None then
                match evaluate best_place with
                | Error e -> error := Some e
                | Ok r ->
                    incr engine_evals;
                    best_dirty := false;
                    latencies := r.Simulator.Engine.latency :: !latencies;
                    if r.Simulator.Engine.latency < !routed_cost then begin
                      routed_place := Array.copy best_place;
                      routed_result := r;
                      routed_cost := r.Simulator.Engine.latency
                    end
            in
            while !error = None && !m < moves && not !timed_out do
              if !m land 511 = 0 && out_of_time () then timed_out := true
              else begin
                incr m;
                let record_improvement () =
                  cur_est := Estimator.Delta.latency delta;
                  if !cur_est < !best_est then begin
                    best_est := !cur_est;
                    for q = 0 to num_qubits - 1 do
                      best_place.(q) <- Estimator.Delta.trap_of delta q
                    done;
                    best_dirty := true;
                    curve := (!m, !cur_est) :: !curve
                  end
                in
                let accepts d =
                  d <= 0.0
                  || Rng.float rng 1.0 < exp (-.d /. Float.max 1e-9 !temperature)
                in
                (match Proposal.draw tracker rng ~num_qubits with
                | Proposal.Stay -> ()
                | Proposal.Swap (i, j) ->
                    let d = Estimator.Delta.apply_swap delta i j in
                    if accepts d then begin
                      Estimator.Delta.commit delta;
                      incr accepted;
                      record_improvement ()
                    end
                    else Estimator.Delta.undo delta
                | Proposal.Relocate (q, dst) ->
                    let src = Estimator.Delta.trap_of delta q in
                    let d = Estimator.Delta.apply_move delta q dst in
                    if accepts d then begin
                      Estimator.Delta.commit delta;
                      Proposal.relocate tracker ~src ~dst;
                      incr accepted;
                      record_improvement ()
                    end
                    else Estimator.Delta.undo delta);
                if !m mod resync_every = 0 then begin
                  let drift = Estimator.Delta.resync delta in
                  if drift > !max_drift then max_drift := drift
                end;
                if !m mod route_every = 0 then route_incumbent ();
                temperature := !temperature *. cooling
              end
            done;
            route_incumbent ();
            (match !error with
            | Some e -> Error e
            | None ->
                Ok
                  {
                    placement = !routed_place;
                    result = !routed_result;
                    moves = !m;
                    accepted = !accepted;
                    engine_evals = !engine_evals;
                    best_estimate = !best_est;
                    max_drift = !max_drift;
                    curve = List.rev !curve;
                    latencies = List.rev !latencies;
                    truncated = !timed_out || (!best_dirty && !engine_evals >= eval_cap);
                  }))
  end
