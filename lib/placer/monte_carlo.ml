type outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  latencies : float list;
  runs : int;
  evaluations : int;
  truncated : bool;
}

(* Map each run index to the index of the first run with an identical
   placement.  [Center.place_permuted] repeats permutations on small
   components, and the evaluation is a pure function of the placement, so
   only canonical runs need routing (or estimating). *)
let canonicalize placements =
  let tbl = Hashtbl.create (2 * Array.length placements) in
  Array.mapi
    (fun i p ->
      match Hashtbl.find_opt tbl p with
      | Some j -> j
      | None ->
          Hashtbl.add tbl p i;
          i)
    placements

(* Indices of the [k] best-estimated candidates among [uniques], returned in
   ascending run order so downstream reductions keep sequential tie-breaks.
   Estimate ties are broken by run index, making the selection a pure
   function of (placements, estimate). *)
let select_top_k ~k scores uniques =
  let order = Array.init (Array.length uniques) Fun.id in
  Array.sort
    (fun x y ->
      match Float.compare scores.(x) scores.(y) with
      | 0 -> Int.compare uniques.(x) uniques.(y)
      | c -> c)
    order;
  let keep = Array.map (fun x -> uniques.(x)) (Array.sub order 0 k) in
  Array.sort Int.compare keep;
  keep

(* Anytime evaluation: map [f] over [items] in fixed-size chunks, stopping
   between chunks once [out_of_time] fires.  Each chunk is fanned out with
   [amap], so jobs=1 vs jobs=N stay bit-identical over whichever prefix was
   evaluated; where the wall-clock cut lands is inherently run-dependent. *)
let chunk_size = 8

let eval_prefix ~out_of_time amap f items =
  let n = Array.length items in
  let acc = ref [] in
  let taken = ref 0 in
  let stopped = ref false in
  while !taken < n && not !stopped do
    let len = min chunk_size (n - !taken) in
    let chunk = Array.sub items !taken len in
    acc := amap f chunk :: !acc;
    taken := !taken + len;
    if !taken < n && out_of_time () then stopped := true
  done;
  (Array.concat (List.rev !acc), !taken, !stopped)

let search ?pool ?prescreen ?max_evals ?(out_of_time = fun () -> false) ~seed ~runs ~evaluate comp
    ~num_qubits =
  if runs < 1 then Error (Simulator.Engine.Invalid "Monte_carlo.search: need at least one run")
  else
    match prescreen with
    | Some (k, _) when k < 1 ->
        Error (Simulator.Engine.Invalid "Monte_carlo.search: prescreen_k must be at least 1")
    | _ ->
        (* Each run's randomness is a pure function of (seed, run index), so
           every fan-out below is bit-identical whether it executes
           sequentially or on a domain pool. *)
        let placements =
          Array.init runs (fun i ->
              let rng = Ion_util.Rng.derive seed ~index:i in
              Center.place_permuted rng comp ~num_qubits)
        in
        let amap f arr =
          match pool with Some p -> Ion_util.Domain_pool.map p f arr | None -> Array.map f arr
        in
        let canon = canonicalize placements in
        let uniques =
          Array.of_seq
            (Seq.filter (fun i -> canon.(i) = i) (Seq.init runs Fun.id))
        in
        let routed =
          match prescreen with
          | Some (k, estimate) when k < Array.length uniques ->
              let scores = amap (fun i -> estimate placements.(i)) uniques in
              select_top_k ~k scores uniques
          | _ -> uniques
        in
        (* deterministic evaluation budget: keep the first [max_evals]
           candidates in run order — best-so-far over a stable prefix *)
        let routed, capped =
          match max_evals with
          | Some cap when cap < Array.length routed -> (Array.sub routed 0 (max 1 cap), true)
          | _ -> (routed, false)
        in
        let routed_results, evaluated, timed_out =
          eval_prefix ~out_of_time amap (fun i -> evaluate placements.(i)) routed
        in
        let routed = Array.sub routed 0 evaluated in
        let result_of = Hashtbl.create (Array.length routed) in
        Array.iteri (fun slot i -> Hashtbl.add result_of i routed_results.(slot)) routed;
        (* Reduce in run order: the first error wins, and latency ties keep
           the earliest run — exactly the sequential loop's behavior.
           Duplicate runs replay their canonical run's result, pre-screened-out
           runs contribute nothing. *)
        let best = ref None in
        let latencies = ref [] in
        let error = ref None in
        for i = 0 to runs - 1 do
          if !error = None then
            match Hashtbl.find_opt result_of canon.(i) with
            | None -> ()
            | Some (Error e) -> error := Some e
            | Some (Ok r) ->
                latencies := r.Simulator.Engine.latency :: !latencies;
                let better =
                  match !best with
                  | None -> true
                  | Some (_, prev) -> r.Simulator.Engine.latency < prev.Simulator.Engine.latency
                in
                if better then best := Some (placements.(i), r)
        done;
        (match (!error, !best) with
        | Some e, _ -> Error e
        | None, None -> Error (Simulator.Engine.Invalid "Monte_carlo.search: no successful run")
        | None, Some (placement, result) ->
            Ok
              {
                placement;
                result;
                latencies = List.rev !latencies;
                runs;
                evaluations = Array.length routed;
                truncated = capped || timed_out;
              })
