type outcome = {
  placement : int array;
  result : Simulator.Engine.result;
  latencies : float list;
  runs : int;
}

let search ?pool ~seed ~runs ~evaluate comp ~num_qubits =
  if runs < 1 then Error "Monte_carlo.search: need at least one run"
  else begin
    (* Each run's randomness is a pure function of (seed, run index), so the
       fan-out below is bit-identical whether it executes sequentially or on
       a domain pool. *)
    let one i =
      let rng = Ion_util.Rng.derive seed ~index:i in
      let placement = Center.place_permuted rng comp ~num_qubits in
      match evaluate placement with Error e -> Error e | Ok r -> Ok (placement, r)
    in
    let amap = match pool with Some p -> Ion_util.Domain_pool.map p | None -> Array.map in
    let results = amap one (Array.init runs Fun.id) in
    (* Reduce in run order: the first error wins, and latency ties keep the
       earliest run — exactly the sequential loop's behavior. *)
    let best = ref None in
    let latencies = ref [] in
    let error = ref None in
    Array.iter
      (fun res ->
        if !error = None then
          match res with
          | Error e -> error := Some e
          | Ok (placement, r) ->
              latencies := r.Simulator.Engine.latency :: !latencies;
              let better =
                match !best with
                | None -> true
                | Some (_, prev) -> r.Simulator.Engine.latency < prev.Simulator.Engine.latency
              in
              if better then best := Some (placement, r))
      results;
    match (!error, !best) with
    | Some e, _ -> Error e
    | None, None -> Error "Monte_carlo.search: no successful run"
    | None, Some (placement, result) ->
        Ok { placement; result; latencies = List.rev !latencies; runs }
  end
