(** Exhaustive placement search — ground truth for tiny instances.

    Enumerates every injective assignment of the qubits onto the
    [candidate_traps] nearest-to-center traps and evaluates each with a full
    schedule-and-route run.  Factorially expensive, so it exists only to
    measure the optimality gap of the heuristic placers on small circuits
    (an experiment the paper did not have the tooling to run). *)

type outcome = {
  placement : int array;  (** the optimal placement over the candidate set *)
  result : Simulator.Engine.result;
  evaluated : int;  (** number of placements tried *)
  worst_latency : float;  (** the worst placement's latency, for spread *)
}

val search_space : candidate_traps:int -> num_qubits:int -> int
(** Number of placements the search would evaluate:
    C(candidates, qubits) x qubits!. *)

val search :
  ?candidate_traps:int ->
  ?max_evaluations:int ->
  evaluate:(int array -> (Simulator.Engine.result, Simulator.Engine.error) result) ->
  Fabric.Component.t ->
  num_qubits:int ->
  (outcome, Simulator.Engine.error) result
(** [candidate_traps] defaults to [num_qubits + 1]; [max_evaluations]
    (default 50_000) rejects searches that would run too long.  [Error] when
    the space exceeds the cap or the fabric is too small (both as
    {!Simulator.Engine.Invalid}), or an evaluation fails. *)
