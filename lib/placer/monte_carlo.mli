(** Monte-Carlo placer (paper Section V.A).

    Draws random center placements, evaluates each by a full
    schedule-and-route run, and keeps the best.  The paper sizes the MC run
    count to match MVFB's total placement runs so the two placers spend the
    same CPU time.

    Each run's randomness is derived from [(seed, run index)] with
    {!Ion_util.Rng.derive}, so runs are independent and the search returns
    bit-identical outcomes whether it executes sequentially or fanned out on
    a {!Ion_util.Domain_pool.t}. *)

type outcome = {
  placement : int array;  (** the winning initial placement *)
  result : Simulator.Engine.result;
  latencies : float list;  (** every run's latency, in run order *)
  runs : int;
}

val search :
  ?pool:Ion_util.Domain_pool.t ->
  seed:int ->
  runs:int ->
  evaluate:(int array -> (Simulator.Engine.result, string) result) ->
  Fabric.Component.t ->
  num_qubits:int ->
  (outcome, string) result
(** [Error] if [runs < 1] or any evaluation fails (the first failing run in
    run order is reported).  [evaluate] must be safe to call from several
    domains at once when a multi-domain [pool] is supplied. *)
