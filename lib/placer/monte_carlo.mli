(** Monte-Carlo placer (paper Section V.A).

    Draws random center placements, evaluates each by a full
    schedule-and-route run, and keeps the best.  The paper sizes the MC run
    count to match MVFB's total placement runs so the two placers spend the
    same CPU time.

    Each run's randomness is derived from [(seed, run index)] with
    {!Ion_util.Rng.derive}, so runs are independent and the search returns
    bit-identical outcomes whether it executes sequentially or fanned out on
    a {!Ion_util.Domain_pool.t}.

    Identical candidate placements are deduplicated before evaluation
    ([Center.place_permuted] repeats permutations on small components);
    duplicate runs replay their canonical run's result, so reported run
    counts and latency lists are unchanged while [evaluations] counts the
    actual engine calls.  With [?prescreen], candidates are first scored by
    the (cheap, pure) estimate function — fanned out on the pool — and only
    the [k] best-estimated unique placements are routed. *)

type outcome = {
  placement : int array;  (** the winning initial placement *)
  result : Simulator.Engine.result;
  latencies : float list;
      (** latency of every run that was routed (or replays a routed
          duplicate), in run order; pre-screened-out runs are absent *)
  runs : int;  (** requested runs, pruned or not *)
  evaluations : int;  (** full engine evaluations actually performed *)
  truncated : bool;
      (** the search stopped early on an evaluation or wall-clock budget —
          the result is the best of the evaluated prefix, not of all runs *)
}

val canonicalize : int array array -> int array
(** [canonicalize placements].(i) is the lowest index whose placement equals
    [placements.(i)] — the dedup map shared by the MC and MVFB sweeps. *)

val select_top_k : k:int -> float array -> int array -> int array
(** [select_top_k ~k scores uniques] — the [k] members of [uniques] with the
    lowest scores ([scores.(i)] scoring [uniques.(i)]), ties broken by the
    lower member, returned sorted ascending.  Requires [k <= length uniques]. *)

val search :
  ?pool:Ion_util.Domain_pool.t ->
  ?prescreen:int * (int array -> float) ->
  ?max_evals:int ->
  ?out_of_time:(unit -> bool) ->
  seed:int ->
  runs:int ->
  evaluate:(int array -> (Simulator.Engine.result, Simulator.Engine.error) result) ->
  Fabric.Component.t ->
  num_qubits:int ->
  (outcome, Simulator.Engine.error) result
(** [Error] if [runs < 1] or [prescreen] carries [k < 1] (both as
    {!Simulator.Engine.Invalid}), or any routed evaluation fails (the first
    failing run in run order is reported).  [prescreen = (k, estimate)]
    routes only the [k] best-estimated unique candidates (estimate ties keep
    the earliest run); [estimate] and [evaluate] must be safe to call from
    several domains at once when a multi-domain [pool] is supplied.

    Budgets make the search anytime: [max_evals] deterministically keeps only
    the first [max_evals] candidates in run order, and [out_of_time] is
    polled between evaluation chunks to stop on a wall-clock deadline (which
    chunk it stops after is inherently run-dependent).  At least one
    candidate is always evaluated; a budget cut sets [truncated]. *)
