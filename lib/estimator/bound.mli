(** Certified, admissible lower bounds on mapped circuit latency — the
    static half of the optimality-gap auditor.

    Every bound here is {e admissible}: it never exceeds the latency of any
    legal mapped execution of the program on the fabric, for any router,
    scheduler or placement refinement.  A mapping whose achieved latency
    equals a bound is therefore provably optimal; the ratio between the two
    is a certified optimality gap.  The catalog (admissibility arguments in
    [doc/analysis.md]):

    - {b critical-path} — the QIDG heaviest path under the technology gate
      delays ({!Qasm.Dag.critical_path}), i.e. the paper's ideal baseline.
      Dependencies must be respected by any schedule.
    - {b serialization} — the busiest single ion: an ion can be in only one
      trap, so all gates touching one qubit execute serially even when the
      QIDG leaves them unordered (shared-control gates commute logically
      but still contend for the shared ion).
    - {b capacity} — two-qubit gate work divided by the number of gates the
      fabric can execute concurrently: each two-qubit gate occupies a whole
      trap with two ions for [t_gate2], and at most
      [min num_traps (num_qubits / 2)] such gates can overlap.
    - {b placement} — a placement-aware release-time propagation: a
      two-qubit gate cannot start before both operands have (serially)
      performed their ancestor gate work {e and} travelled from their
      initial traps to some common trap, where travel is bounded below by
      the turn-aware shortest-path {!Distance} tables.  Releases are
      propagated through the QIDG, so this bound dominates critical-path.

    The {!kind} vocabulary also names the exact branch-and-bound optimum
    ([Exact]) produced by [Analysis.Bound] so every surface (certificates,
    service responses, bench rows) shares one encoding. *)

type kind = Critical_path | Serialization | Capacity | Placement | Exact

val kind_to_string : kind -> string
(** ["critical-path"], ["serialization"], ["capacity"], ["placement"],
    ["exact"] — the wire encoding used by qspr-certificate/2 and
    qspr-result/2. *)

val kind_of_string : string -> kind option

type t = {
  critical_path_us : float;
  serialization_us : float;
  capacity_us : float;
  placement_us : float option;  (** [None] without a placement + tables *)
  lower_bound_us : float;  (** the max of the bounds above *)
  kind : kind;  (** which bound attains [lower_bound_us] (first in catalog order on ties) *)
}

val compute :
  ?placement:int array ->
  ?distance:Distance.t ->
  timing:Router.Timing.t ->
  num_traps:int ->
  Qasm.Dag.t ->
  t
(** Computes the full catalog.  The placement bound needs both [placement]
    ([placement.(q)] = qubit [q]'s initial trap) and [distance] tables built
    at this timing's turn cost; it is omitted otherwise.  A pure function of
    its arguments — bit-identical across jobs widths and call sites.
    @raise Invalid_argument when [placement] is shorter than the program's
    qubit count or names a trap outside the tables. *)

type infeasibility = {
  inf_qubits : int;  (** qubits the program declares *)
  inf_traps : int;  (** traps the fabric provides *)
  inf_required : int;  (** traps needed for the violated rule *)
  inf_hard : bool;
      (** [true]: the capacity bound itself is infinite — fewer than
          [ceil (qubits / 2)] traps, so no legal two-ions-per-trap placement
          exists at all.  [false]: the pipeline's load rule (one ion per
          trap at t=0) cannot be satisfied, so every placer and retry is
          doomed even though a denser packing might exist in principle. *)
}

val infeasibility : num_traps:int -> Qasm.Dag.t -> infeasibility option
(** Static mappability check, used by [qspr audit] and [Fault.campaign] to
    refuse impossible instances before burning placement retries. *)

val infeasibility_message : infeasibility -> string
