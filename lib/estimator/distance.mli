(** All-pairs trap-to-trap distance tables over the turn-aware routing
    graph — the fabric half of the LEQA-style latency estimator.

    Built once per fabric graph: one Dijkstra sweep per trap port under the
    same move-unit metric the router uses (every channel/junction/tap step
    costs one move, a turn costs [turn_cost] moves), cached as flat arrays
    so a lookup in the per-placement estimation loop is one load and no
    allocation.  A meeting-trap table mirrors the engine's two-qubit trap
    selection: the meeting trap of operands at [a] and [b] is the trap
    minimizing the makespan [max (d a m) (d b m)] of moving both operands
    there (ties broken by total distance, then by trap id) — the estimator's
    stand-in for "nearest available trap to the median". *)

type t

val build : ?workspace:Router.Workspace.t -> Fabric.Graph.t -> turn_cost:float -> t
(** One Dijkstra per trap plus the pairwise meeting-trap scan; [turn_cost]
    is the turn-edge weight in move units (see
    {!Router.Timing.turn_cost_in_moves}).  [workspace] is reused across the
    sweeps when supplied.
    @raise Invalid_argument on a negative turn cost. *)

val num_traps : t -> int

val turn_cost : t -> float
(** The turn-edge weight the tables were built at — lets a holder check a
    prebuilt table set matches its timing before sharing it. *)

val tables : t -> float array * int array
(** The raw row-major [num_traps * num_traps] distance and meeting-trap
    tables behind {!between} and {!meet} — shared, not copied, and must be
    treated as frozen.  Exposed for the {!Delta} model's proposal loop,
    where the per-call indexing of the accessors is measurable. *)

val between : t -> int -> int -> float
(** [between t a b] — shortest travel distance from trap [a] to trap [b] in
    move units ([infinity] when unreachable, [0.] when [a = b]). *)

val meet : t -> int -> int -> int
(** The meeting trap for operands at [a] and [b]; [meet t a a = a]. *)

val meet_makespan : t -> int -> int -> float
(** [max (between a m) (between b m)] for [m = meet t a b] — the modeled
    dual-operand travel time to the meeting trap, in move units
    ([infinity] when the traps cannot reach each other). *)
