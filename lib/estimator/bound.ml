module D = Qasm.Dag
module Timing = Router.Timing

type kind = Critical_path | Serialization | Capacity | Placement | Exact

let kind_to_string = function
  | Critical_path -> "critical-path"
  | Serialization -> "serialization"
  | Capacity -> "capacity"
  | Placement -> "placement"
  | Exact -> "exact"

let kind_of_string = function
  | "critical-path" -> Some Critical_path
  | "serialization" -> Some Serialization
  | "capacity" -> Some Capacity
  | "placement" -> Some Placement
  | "exact" -> Some Exact
  | _ -> None

type t = {
  critical_path_us : float;
  serialization_us : float;
  capacity_us : float;
  placement_us : float option;
  lower_bound_us : float;
  kind : kind;
}

(* Ancestor bitsets are quadratic in the instruction count; past this the
   placement bound falls back to travel-only releases (still admissible). *)
let max_ancestor_nodes = 4096

(* Release-time propagation: est(i) >= release(i) and
   est(i) >= est(p) + delay(p) for every QIDG predecessor p.  Any legal
   schedule satisfies both, so max_i (est(i) + delay(i)) is admissible. *)
let propagate ~delay nodes release =
  let n = Array.length nodes in
  let est = Array.make n 0.0 in
  let finish = ref 0.0 in
  Array.iter
    (fun (nd : D.node) ->
      let r =
        List.fold_left
          (fun acc p -> Float.max acc (est.(p) +. delay nodes.(p).D.instr))
          release.(nd.D.id) nd.D.preds
      in
      est.(nd.D.id) <- r;
      finish := Float.max !finish (r +. delay nd.D.instr))
    nodes;
  !finish

let placement_bound ~delay ~timing ~dist ~pl nodes nq =
  let n = Array.length nodes in
  if Array.length pl < nq then
    invalid_arg "Estimator.Bound.compute: placement shorter than the program's qubit count";
  let ntraps = Distance.num_traps dist in
  for q = 0 to nq - 1 do
    if pl.(q) < 0 || pl.(q) >= ntraps then
      invalid_arg "Estimator.Bound.compute: placement names a trap outside the distance tables"
  done;
  (* anc.(i) = QIDG ancestors of node i, as a bitset over node ids. *)
  let anc =
    if n > max_ancestor_nodes then None
    else begin
      let anc = Array.init n (fun _ -> Ion_util.Bitv.create n) in
      Array.iter
        (fun (nd : D.node) ->
          List.iter
            (fun p ->
              Ion_util.Bitv.or_into ~dst:anc.(nd.D.id) ~src:anc.(p);
              Ion_util.Bitv.set anc.(nd.D.id) p true)
            nd.D.preds)
        nodes;
      Some anc
    end
  in
  (* w i q: gate time of ancestors of i touching qubit q.  They all finish
     before i starts, and they pairwise share ion q, hence run serially. *)
  let w =
    match anc with
    | None -> fun _ _ -> 0.0
    | Some anc ->
        fun i q ->
          let acc = ref 0.0 in
          Ion_util.Bitv.iter_set anc.(i) (fun a ->
              let d = delay nodes.(a).D.instr in
              if d > 0.0 && List.mem q (Qasm.Instr.qubits nodes.(a).D.instr) then acc := !acc +. d);
          !acc
  in
  let t_move = timing.Timing.t_move in
  let release = Array.make n 0.0 in
  Array.iter
    (fun (nd : D.node) ->
      match nd.D.instr with
      | Qasm.Instr.Qubit_decl _ -> ()
      | Qasm.Instr.Gate1 (_, q) -> release.(nd.D.id) <- w nd.D.id q
      | Qasm.Instr.Gate2 (_, a, b) ->
          (* The gate runs in some trap m; each operand must first spend its
             ancestor gate time and then at least the shortest-path travel
             from its initial trap to m (a route's cumulative cost can only
             exceed the table distance).  Minimize over the unknown m. *)
          let wa = w nd.D.id a and wb = w nd.D.id b in
          let pa = pl.(a) and pb = pl.(b) in
          let best = ref infinity in
          for m = 0 to ntraps - 1 do
            let c =
              Float.max
                (wa +. (Distance.between dist pa m *. t_move))
                (wb +. (Distance.between dist pb m *. t_move))
            in
            if c < !best then best := c
          done;
          release.(nd.D.id) <- !best)
    nodes;
  propagate ~delay nodes release

let compute ?placement ?distance ~timing ~num_traps dag =
  let delay = Timing.gate_delay timing in
  let nodes = D.nodes dag in
  let nq = Qasm.Program.num_qubits (D.program dag) in
  let critical_path_us = D.critical_path ~delay dag in
  (* serialization: the busiest single ion's total gate time *)
  let per_q = Array.make (max nq 1) 0.0 in
  Array.iter
    (fun (nd : D.node) ->
      let d = delay nd.D.instr in
      if d > 0.0 then List.iter (fun q -> per_q.(q) <- per_q.(q) +. d) (Qasm.Instr.qubits nd.D.instr))
    nodes;
  let serialization_us = Array.fold_left Float.max 0.0 per_q in
  (* capacity: two-qubit gate work over the concurrency ceiling *)
  let g2 =
    Array.fold_left (fun acc nd -> if Qasm.Instr.is_two_qubit nd.D.instr then acc + 1 else acc) 0 nodes
  in
  let slots = min num_traps (nq / 2) in
  let capacity_us =
    if g2 = 0 || slots <= 0 then 0.0
    else float_of_int g2 *. timing.Timing.t_gate2 /. float_of_int slots
  in
  let placement_us =
    match (placement, distance) with
    | Some pl, Some dist when Array.length nodes > 0 ->
        Some (placement_bound ~delay ~timing ~dist ~pl nodes nq)
    | _ -> None
  in
  let candidates =
    [
      (Critical_path, critical_path_us);
      (Serialization, serialization_us);
      (Capacity, capacity_us);
    ]
    @ (match placement_us with Some p -> [ (Placement, p) ] | None -> [])
  in
  let lower_bound_us = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 candidates in
  let kind =
    (* first in catalog order attaining the max, for deterministic ties *)
    match List.find_opt (fun (_, v) -> v >= lower_bound_us) candidates with
    | Some (k, _) -> k
    | None -> Critical_path
  in
  { critical_path_us; serialization_us; capacity_us; placement_us; lower_bound_us; kind }

type infeasibility = {
  inf_qubits : int;
  inf_traps : int;
  inf_required : int;
  inf_hard : bool;
}

let infeasibility ~num_traps dag =
  let nq = Qasm.Program.num_qubits (D.program dag) in
  if nq = 0 then None
  else if 2 * num_traps < nq then
    Some { inf_qubits = nq; inf_traps = num_traps; inf_required = (nq + 1) / 2; inf_hard = true }
  else if num_traps < nq then
    Some { inf_qubits = nq; inf_traps = num_traps; inf_required = nq; inf_hard = false }
  else None

let infeasibility_message i =
  if i.inf_hard then
    Printf.sprintf
      "capacity bound is infinite: %d qubits need at least %d traps (two ions per trap) but the \
       fabric has %d"
      i.inf_qubits i.inf_required i.inf_traps
  else
    Printf.sprintf
      "unmappable under the load rule: %d qubits need %d traps (one ion per trap at load) but the \
       fabric has %d"
      i.inf_qubits i.inf_required i.inf_traps
