type t = {
  n : int;
  turn_cost : float;  (* the turn-edge weight the tables were built at *)
  dist : float array;  (* n*n, move units, row = source trap *)
  meet_tbl : int array;  (* n*n, meeting trap per operand pair *)
  makespan : float array;  (* n*n, max distance of either operand to the meet *)
}

let num_traps t = t.n
let turn_cost t = t.turn_cost
let tables t = (t.dist, t.meet_tbl)
let between t a b = t.dist.((a * t.n) + b)
let meet t a b = t.meet_tbl.((a * t.n) + b)
let meet_makespan t a b = t.makespan.((a * t.n) + b)

let build ?workspace graph ~turn_cost =
  if turn_cost < 0.0 || Float.is_nan turn_cost then
    invalid_arg "Estimator.Distance.build: turn cost must be non-negative";
  let comp = Fabric.Graph.component graph in
  let n = Array.length (Fabric.Component.traps comp) in
  let ws = match workspace with Some w -> w | None -> Router.Workspace.create () in
  (* Row a is trap a's lower-bound table sampled at the trap nodes: the
     router's per-destination sweeps and these trap-to-trap tables are the
     same machinery (Lower_bound owns the base-weight definition), and the
     fabric graph's base-weight symmetry makes from-a and to-a identical. *)
  let dist = Array.make (n * n) infinity in
  for a = 0 to n - 1 do
    let lb = Router.Lower_bound.build ~workspace:ws graph ~turn_cost ~dst:(Fabric.Graph.trap_node graph a) in
    for b = 0 to n - 1 do
      dist.((a * n) + b) <- Router.Lower_bound.to_dst lb (Fabric.Graph.trap_node graph b)
    done
  done;
  let meet_tbl = Array.make (n * n) 0 in
  let makespan = Array.make (n * n) 0.0 in
  for a = 0 to n - 1 do
    meet_tbl.((a * n) + a) <- a;
    for b = a + 1 to n - 1 do
      (* Minimize the slower operand's travel; break ties toward the least
         total travel, then the lowest trap id, so the table is a pure
         function of the fabric. *)
      let best = ref (-1) and best_mk = ref infinity and best_sum = ref infinity in
      for m = 0 to n - 1 do
        let da = dist.((a * n) + m) and db = dist.((b * n) + m) in
        let mk = Float.max da db and sum = da +. db in
        if mk < !best_mk || (mk = !best_mk && sum < !best_sum) then begin
          best := m;
          best_mk := mk;
          best_sum := sum
        end
      done;
      let best = if !best < 0 then a (* no finite meet: disconnected pair *) else !best in
      meet_tbl.((a * n) + b) <- best;
      meet_tbl.((b * n) + a) <- best;
      makespan.((a * n) + b) <- !best_mk;
      makespan.((b * n) + a) <- !best_mk
    done
  done;
  { n; turn_cost; dist; meet_tbl; makespan }
