(* The instruction stream is flattened into parallel arrays so the
   estimation loop touches only ints and floats: kind 0 = no-op
   (declaration), 1 = one-qubit gate, 2 = two-qubit gate. *)
type t = {
  dist : Distance.t;
  timing : Router.Timing.t;
  nq : int;
  kind : int array;
  qa : int array;  (* operand / control *)
  qb : int array;  (* target, two-qubit gates only *)
  prio : float array;  (* the engine's issue priorities (Priority.qspr_default) *)
  stretch : float array;  (* congestion multiplier on travel, per instruction *)
  succs : int array array;
  indeg0 : int array;  (* initial in-degrees, copied into scratch per call *)
  tx : int array;  (* trap coordinates, for the engine's midpoint trap choice *)
  ty : int array;
}

(* Per-domain estimation scratch, shared by every model.  A Domain.DLS slot
   is process-lifetime — a per-model key would pin one scratch per model
   ever built on each domain that estimated with it, which in the service
   (one model per admitted request) compounds into an unbounded leak.  One
   module-level key bounds retention to the largest model each domain has
   seen; [ensure_scratch] grows the arrays monotonically to fit. *)
type scratch = {
  mutable engaged : bool array;  (* per qubit: reserved by an in-flight instruction *)
  mutable pos : int array;  (* per qubit: current (or inbound) trap *)
  mutable occ : int array;  (* per trap: assigned ions — availability mirror *)
  mutable indeg : int array;
  mutable status : int array;  (* per node: 0 waiting, 1 ready, 2 issued/done *)
  mutable ready : int array;  (* ids with status 1, maintained as a prefix *)
  mutable heap_time : float array;  (* binary min-heap of instruction completions *)
  mutable heap_id : int array;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        engaged = [||];
        pos = [||];
        occ = [||];
        indeg = [||];
        status = [||];
        ready = [||];
        heap_time = [||];
        heap_id = [||];
      })

let ensure_scratch s ~nq ~ntraps ~n =
  if Array.length s.engaged < nq then begin
    s.engaged <- Array.make nq false;
    s.pos <- Array.make nq 0
  end;
  if Array.length s.occ < ntraps then s.occ <- Array.make ntraps 0;
  if Array.length s.indeg < n then begin
    s.indeg <- Array.make n 0;
    s.status <- Array.make n 0;
    s.ready <- Array.make n 0
  end;
  if Array.length s.heap_time < n + 1 then begin
    s.heap_time <- Array.make (n + 1) 0.0;
    s.heap_id <- Array.make (n + 1) 0
  end

let warm_scratch ~num_qubits ~num_traps ~num_instrs =
  ensure_scratch (Domain.DLS.get scratch_key)
    ~nq:num_qubits ~ntraps:num_traps ~n:num_instrs

let distance t = t.dist
let num_qubits t = t.nq

(* Read-only window onto the flattened instruction stream for the delta
   model: the arrays are the model's own (no copy), so holders must treat
   them as frozen. *)
type view = {
  v_dist : Distance.t;
  v_timing : Router.Timing.t;
  v_nq : int;
  v_kind : int array;
  v_qa : int array;
  v_qb : int array;
  v_stretch : float array;
  v_succs : int array array;
}

let view t =
  {
    v_dist = t.dist;
    v_timing = t.timing;
    v_nq = t.nq;
    v_kind = t.kind;
    v_qa = t.qa;
    v_qb = t.qb;
    v_stretch = t.stretch;
    v_succs = t.succs;
  }

let create ~graph ~timing ?distance ?(congestion_alpha = 0.01) ?(congestion_threshold = 2) dag =
  if congestion_alpha < 0.0 || Float.is_nan congestion_alpha then
    invalid_arg "Estimator.Model.create: congestion_alpha must be non-negative";
  if congestion_threshold < 0 then
    invalid_arg "Estimator.Model.create: congestion_threshold must be non-negative";
  let turn_cost = Router.Timing.turn_cost_in_moves timing in
  let dist =
    match distance with
    | Some d ->
        if Distance.turn_cost d <> turn_cost then
          invalid_arg "Estimator.Model.create: prebuilt distance tables use a different turn cost";
        if Distance.num_traps d <> Array.length (Fabric.Component.traps (Fabric.Graph.component graph))
        then invalid_arg "Estimator.Model.create: prebuilt distance tables are for a different fabric";
        d
    | None -> Distance.build graph ~turn_cost
  in
  let nq = Qasm.Program.num_qubits (Qasm.Dag.program dag) in
  let n = Qasm.Dag.num_nodes dag in
  let kind = Array.make n 0 and qa = Array.make n 0 and qb = Array.make n 0 in
  (* Gate levels — 1 + max level over predecessors, declarations at 0 — feed
     the per-level two-qubit census behind the congestion stretch.  Node ids
     are already topological, so one forward pass suffices. *)
  let level = Array.make n 0 in
  for i = 0 to n - 1 do
    let node = Qasm.Dag.node dag i in
    (match node.Qasm.Dag.instr with
    | Qasm.Instr.Qubit_decl _ -> ()
    | Gate1 (_, q) ->
        kind.(i) <- 1;
        qa.(i) <- q
    | Gate2 (_, c, tgt) ->
        kind.(i) <- 2;
        qa.(i) <- c;
        qb.(i) <- tgt);
    if kind.(i) <> 0 then
      level.(i) <-
        List.fold_left (fun acc p -> Int.max acc (level.(p) + 1)) 1 node.Qasm.Dag.preds
  done;
  let max_level = Array.fold_left Int.max 0 level in
  let two_qubit_per_level = Array.make (max_level + 1) 0 in
  for i = 0 to n - 1 do
    if kind.(i) = 2 then
      two_qubit_per_level.(level.(i)) <- two_qubit_per_level.(level.(i)) + 1
  done;
  let stretch =
    Array.init n (fun i ->
        if kind.(i) <> 2 then 1.0
        else
          let extra = two_qubit_per_level.(level.(i)) - congestion_threshold in
          1.0 +. (congestion_alpha *. float_of_int (Int.max 0 extra)))
  in
  let prio =
    Scheduler.Priority.compute Scheduler.Priority.qspr_default
      ~delay:(Router.Timing.gate_delay timing) dag
  in
  let succs = Array.init n (fun i -> Array.of_list (Qasm.Dag.node dag i).Qasm.Dag.succs) in
  let indeg0 = Array.init n (fun i -> List.length (Qasm.Dag.node dag i).Qasm.Dag.preds) in
  let traps = Fabric.Component.traps (Fabric.Graph.component graph) in
  let tx = Array.map (fun tr -> tr.Fabric.Component.tpos.Ion_util.Coord.x) traps in
  let ty = Array.map (fun tr -> tr.Fabric.Component.tpos.Ion_util.Coord.y) traps in
  { dist; timing; nq; kind; qa; qb; prio; stretch; succs; indeg0; tx; ty }

(* The engine's two-qubit trap choice (Engine.trap_candidates): nearest trap
   by Manhattan distance to the midpoint of the operands' traps, restricted
   to traps whose every occupant is an instruction operand; ties keep the
   lowest trap id (Component.nearest_traps sorts by (distance, tid)).  The
   caller has already removed the two operands from [occ], so availability
   is simply emptiness.  Falls back to the static min-makespan meeting trap
   when every trap is blocked (the engine would stall and retry; the
   estimator just pays the move). *)
let choose_meet t occ a b =
  let mx = (t.tx.(a) + t.tx.(b)) / 2 and my = (t.ty.(a) + t.ty.(b)) / 2 in
  let best = ref (-1) and best_d = ref max_int in
  for m = 0 to Array.length t.tx - 1 do
    if occ.(m) = 0 then begin
      let d = abs (t.tx.(m) - mx) + abs (t.ty.(m) - my) in
      if d < !best_d then begin
        best := m;
        best_d := d
      end
    end
  done;
  if !best < 0 then Distance.meet t.dist a b else !best

(* Event-driven mirror of [Simulator.Engine.run] with the router replaced by
   the precomputed distance tables: instructions issue eagerly in priority
   order whenever their operands are disengaged, both operands of a
   two-qubit gate depart at issue time for the midpoint-nearest available
   trap, and completions free the operands and ready the successors.  What
   the mirror drops is congestion — channel acquisition, stalls and detours
   — whose average effect the per-instruction [stretch] factor recovers.
   Every tie is broken by instruction id, so the walk is a pure function of
   the model and the placement. *)
let estimate t placement =
  if Array.length placement <> t.nq then
    invalid_arg "Estimator.Model.estimate: placement arity does not match the program";
  let ntraps = Distance.num_traps t.dist in
  Array.iter
    (fun p ->
      if p < 0 || p >= ntraps then invalid_arg "Estimator.Model.estimate: trap id out of range")
    placement;
  let n = Array.length t.kind in
  let s = Domain.DLS.get scratch_key in
  ensure_scratch s ~nq:t.nq ~ntraps ~n;
  let { engaged; pos; occ; indeg; status; ready; heap_time; heap_id } = s in
  Array.fill engaged 0 t.nq false;
  Array.blit placement 0 pos 0 t.nq;
  Array.fill occ 0 (Array.length occ) 0;
  Array.iter (fun p -> occ.(p) <- occ.(p) + 1) placement;
  Array.blit t.indeg0 0 indeg 0 n;
  let nready = ref 0 in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then begin
      status.(i) <- 1;
      ready.(!nready) <- i;
      incr nready
    end
    else status.(i) <- 0
  done;
  (* binary min-heap of (completion time, id); pop order among equal times
     is irrelevant because events are drained in batches per timestamp *)
  let nheap = ref 0 in
  let heap_push time id =
    incr nheap;
    let k = ref !nheap in
    while !k > 1 && heap_time.(!k / 2) > time do
      heap_time.(!k) <- heap_time.(!k / 2);
      heap_id.(!k) <- heap_id.(!k / 2);
      k := !k / 2
    done;
    heap_time.(!k) <- time;
    heap_id.(!k) <- id
  in
  let heap_pop () =
    let id = heap_id.(1) in
    let time = heap_time.(!nheap) and tid = heap_id.(!nheap) in
    decr nheap;
    let k = ref 1 in
    let continue = ref (!nheap > 1) in
    while !continue do
      let l = 2 * !k in
      let c =
        if l > !nheap then 0
        else if l + 1 <= !nheap && heap_time.(l + 1) < heap_time.(l) then l + 1
        else l
      in
      if c = 0 || heap_time.(c) >= time then continue := false
      else begin
        heap_time.(!k) <- heap_time.(c);
        heap_id.(!k) <- heap_id.(c);
        k := c
      end
    done;
    if !nheap > 0 then begin
      heap_time.(!k) <- time;
      heap_id.(!k) <- tid
    end;
    id
  in
  let clock = ref 0.0 and latency = ref 0.0 in
  let tm = t.timing in
  let ready_succs i =
    Array.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 && status.(s) = 0 then begin
          status.(s) <- 1;
          ready.(!nready) <- s;
          incr nready
        end)
      t.succs.(i)
  in
  let complete i =
    (match t.kind.(i) with
    | 1 -> engaged.(t.qa.(i)) <- false
    | 2 ->
        engaged.(t.qa.(i)) <- false;
        engaged.(t.qb.(i)) <- false
    | _ -> ());
    ready_succs i
  in
  (* issue everything issuable at the current clock, highest priority first;
     declarations complete immediately and can ready further instructions,
     so iterate until a pass makes no progress — Engine.issue_round *)
  let issue_round () =
    let again = ref true in
    while !again do
      again := false;
      (* compact away issued entries, then insertion-sort the prefix by
         (priority desc, id asc) — Ready_set.ready's order *)
      let w = ref 0 in
      for r = 0 to !nready - 1 do
        if status.(ready.(r)) = 1 then begin
          ready.(!w) <- ready.(r);
          incr w
        end
      done;
      nready := !w;
      for r = 1 to !nready - 1 do
        let id = ready.(r) in
        let p = t.prio.(id) in
        let j = ref r in
        while
          !j > 0
          && (t.prio.(ready.(!j - 1)) < p
             || (t.prio.(ready.(!j - 1)) = p && ready.(!j - 1) > id))
        do
          ready.(!j) <- ready.(!j - 1);
          decr j
        done;
        ready.(!j) <- id
      done;
      let round = !nready in
      for r = 0 to round - 1 do
        let i = ready.(r) in
        match t.kind.(i) with
        | 0 ->
            status.(i) <- 2;
            ready_succs i;
            again := true
        | 1 ->
            let q = t.qa.(i) in
            if not engaged.(q) then begin
              status.(i) <- 2;
              engaged.(q) <- true;
              let finish = !clock +. tm.Router.Timing.t_gate1 in
              if finish > !latency then latency := finish;
              heap_push finish i;
              again := true
            end
        | _ ->
            let c = t.qa.(i) and tgt = t.qb.(i) in
            if not (engaged.(c) || engaged.(tgt)) then begin
              status.(i) <- 2;
              engaged.(c) <- true;
              engaged.(tgt) <- true;
              let a = pos.(c) and b = pos.(tgt) in
              let arrive =
                if a = b then !clock
                else begin
                  occ.(a) <- occ.(a) - 1;
                  occ.(b) <- occ.(b) - 1;
                  let m = choose_meet t occ a b in
                  occ.(m) <- occ.(m) + 2;
                  pos.(c) <- m;
                  pos.(tgt) <- m;
                  let scale = tm.Router.Timing.t_move *. t.stretch.(i) in
                  !clock
                  +. (Float.max (Distance.between t.dist a m) (Distance.between t.dist b m)
                     *. scale)
                end
              in
              let finish = arrive +. tm.Router.Timing.t_gate2 in
              if finish > !latency then latency := finish;
              heap_push finish i;
              again := true
            end
      done
    done
  in
  issue_round ();
  while !nheap > 0 do
    let time = heap_time.(1) in
    clock := time;
    (* drain every completion at this timestamp before re-issuing *)
    while !nheap > 0 && heap_time.(1) <= time +. 1e-9 do
      complete (heap_pop ())
    done;
    issue_round ()
  done;
  !latency
