(* Incremental longest-path latency model over the QIDG.

   [Model.estimate] replays the whole event-driven mirror per candidate;
   this module trades its occupancy-aware trap choice for the static
   min-makespan meeting trap ([Distance.meet]) and serialized operands, in
   exchange for an O(affected cone) [apply_swap]/[apply_move].  Gates are
   chained per qubit in id order (the DAG omits edges between gates that
   share only a read operand, but trapped ions engage their qubit either
   way), so a gate's start time is the max completion over its QIDG
   predecessors and the previous gates touching each operand, and its
   operands' positions flow along those chains.  Every edge points from a
   lower id to a higher one, so a min-id heap recomputes each affected gate
   exactly once per transaction and a single forward pass is a full
   evaluation.  The incremental update is bit-exact against that full
   evaluation: recomputation applies the same float expressions to the same
   inputs, and [resync] exists as a belt-and-suspenders drift bound. *)

type t = {
  dist : Distance.t;
  dtbl : float array;  (* Distance's raw row-major distance table *)
  mtbl : int array;  (* Distance's raw row-major meeting-trap table *)
  ntr : int;  (* traps — the tables' row stride *)
  t_gate1 : float;
  t_gate2 : float;
  t_move : float;
  nq : int;
  n : int;
  kind : int array;
  qa : int array;
  qb : int array;
  stretch : float array;
  succs : int array array;
  preds : int array array;  (* QIDG predecessors, inverse of [succs] *)
  (* per-qubit chains: previous/next gate touching the [qa]/[qb] operand *)
  cpa : int array;
  cpb : int array;
  cna : int array;
  cnb : int array;
  first_gate : int array;  (* per qubit: first gate touching it, -1 if none *)
  sinks : int array;  (* gates with no chain successor on any operand *)
  (* mutable evaluation state *)
  comp : float array;  (* completion time per node (0 for declarations) *)
  outa : int array;  (* trap of [qa] after gate i completes *)
  outb : int array;  (* trap of [qb] after gate i completes (2-qubit only) *)
  pos : int array;  (* current placement: qubit -> initial trap *)
  occ_by : int array;  (* trap -> occupying qubit, -1 when free *)
  mutable latency : float;
  (* open-transaction journal: each affected node at most once *)
  mutable active : bool;
  mutable jn : int;
  j_id : int array;
  j_comp : float array;
  j_outa : int array;
  j_outb : int array;
  mutable jq : int;  (* journaled qubit moves (at most 2 per transaction) *)
  j_qubit : int array;
  j_trap : int array;
  mutable old_latency : float;
  (* propagation frontier: dirty ids processed by an increasing cursor *)
  dirty : bool array;
  mutable ndirty : int;
  mutable lo : int;  (* lower bound on the smallest dirty id *)
}

let num_qubits t = t.nq
let num_traps t = Distance.num_traps t.dist
let latency t = t.latency
let trap_of t q = t.pos.(q)
let occupant t trap = t.occ_by.(trap)
let placement t = Array.copy t.pos
let in_transaction t = t.active

(* Recompute node [i]'s completion and out-positions from its (already
   final) predecessors.  The bit-exactness of the incremental path rests on
   full evaluation and cone recomputation both being exactly this code.
   This is the innermost loop of million-move annealing, so it reads the
   raw distance tables and skips bounds checks — every index is an
   internally maintained id below [n] or [ntr]. *)
let recompute t i =
  let comp = t.comp and outa = t.outa and outb = t.outb and qa = t.qa in
  let ready = ref 0.0 in
  let ps = Array.unsafe_get t.preds i in
  for k = 0 to Array.length ps - 1 do
    let c = Array.unsafe_get comp (Array.unsafe_get ps k) in
    if c > !ready then ready := c
  done;
  let cpa = Array.unsafe_get t.cpa i in
  if cpa >= 0 then begin
    let c = Array.unsafe_get comp cpa in
    if c > !ready then ready := c
  end;
  let cpb = Array.unsafe_get t.cpb i in
  if cpb >= 0 then begin
    let c = Array.unsafe_get comp cpb in
    if c > !ready then ready := c
  end;
  (* an operand's input trap is the chain predecessor's out-position for
     that qubit, or the placement when the operand is untouched so far —
     spelled out at each use to keep this allocation-free *)
  let pos = t.pos in
  match Array.unsafe_get t.kind i with
  | 1 ->
      let a = Array.unsafe_get qa i in
      let ia =
        if cpa < 0 then Array.unsafe_get pos a
        else if Array.unsafe_get qa cpa = a then Array.unsafe_get outa cpa
        else Array.unsafe_get outb cpa
      in
      Array.unsafe_set outa i ia;
      Array.unsafe_set comp i (!ready +. t.t_gate1)
  | 2 ->
      let a = Array.unsafe_get qa i and b = Array.unsafe_get t.qb i in
      let ia =
        if cpa < 0 then Array.unsafe_get pos a
        else if Array.unsafe_get qa cpa = a then Array.unsafe_get outa cpa
        else Array.unsafe_get outb cpa
      and ib =
        if cpb < 0 then Array.unsafe_get pos b
        else if Array.unsafe_get qa cpb = b then Array.unsafe_get outa cpb
        else Array.unsafe_get outb cpb
      in
      if ia = ib then begin
        Array.unsafe_set outa i ia;
        Array.unsafe_set outb i ia;
        Array.unsafe_set comp i (!ready +. t.t_gate2)
      end
      else begin
        let row = ia * t.ntr in
        let m = Array.unsafe_get t.mtbl (row + ib) in
        Array.unsafe_set outa i m;
        Array.unsafe_set outb i m;
        let da = Array.unsafe_get t.dtbl (row + m)
        and db = Array.unsafe_get t.dtbl ((ib * t.ntr) + m) in
        let travel = Float.max da db *. t.t_move *. Array.unsafe_get t.stretch i in
        Array.unsafe_set comp i (!ready +. travel +. t.t_gate2)
      end
  | _ -> Array.unsafe_set comp i 0.0

(* Completion is monotone along every edge (gate delays are positive), so
   the makespan is attained at a chain sink. *)
let refresh_latency t =
  let sinks = t.sinks and comp = t.comp in
  let lat = ref 0.0 in
  for k = 0 to Array.length sinks - 1 do
    let c = Array.unsafe_get comp (Array.unsafe_get sinks k) in
    if c > !lat then lat := c
  done;
  t.latency <- !lat

(* Full forward pass in id order — every edge (DAG and chain) points from a
   lower id to a higher one, so one sweep reaches the fixpoint. *)
let eval_all t =
  for i = 0 to t.n - 1 do
    recompute t i
  done;
  refresh_latency t

let create model placement =
  let v = Model.view model in
  let n = Array.length v.Model.v_kind in
  let nq = v.Model.v_nq in
  if Array.length placement <> nq then
    invalid_arg "Estimator.Delta.create: placement arity does not match the program";
  let ntraps = Distance.num_traps v.Model.v_dist in
  Array.iter
    (fun p ->
      if p < 0 || p >= ntraps then invalid_arg "Estimator.Delta.create: trap id out of range")
    placement;
  let occ_by = Array.make ntraps (-1) in
  Array.iteri
    (fun q p ->
      if occ_by.(p) >= 0 then invalid_arg "Estimator.Delta.create: duplicate trap assignment";
      occ_by.(p) <- q)
    placement;
  let kind = v.Model.v_kind and qa = v.Model.v_qa and qb = v.Model.v_qb in
  let succs = v.Model.v_succs in
  let preds = Array.make n [||] in
  let npred = Array.make n 0 in
  Array.iter (Array.iter (fun s -> npred.(s) <- npred.(s) + 1)) succs;
  Array.iteri (fun i c -> preds.(i) <- Array.make c 0; npred.(i) <- 0) npred;
  Array.iteri
    (fun i ss ->
      Array.iter
        (fun s ->
          preds.(s).(npred.(s)) <- i;
          npred.(s) <- npred.(s) + 1)
        ss)
    succs;
  let cpa = Array.make n (-1)
  and cpb = Array.make n (-1)
  and cna = Array.make n (-1)
  and cnb = Array.make n (-1) in
  let first_gate = Array.make nq (-1) in
  let last = Array.make nq (-1) in
  let link q i =
    (match last.(q) with
    | -1 -> first_gate.(q) <- i
    | p -> if qa.(p) = q then cna.(p) <- i else cnb.(p) <- i);
    last.(q) <- i
  in
  for i = 0 to n - 1 do
    match kind.(i) with
    | 1 ->
        cpa.(i) <- last.(qa.(i));
        link qa.(i) i
    | 2 ->
        cpa.(i) <- last.(qa.(i));
        link qa.(i) i;
        cpb.(i) <- last.(qb.(i));
        link qb.(i) i
    | _ -> ()
  done;
  let sinks =
    Array.of_seq
      (Seq.filter
         (fun i -> kind.(i) <> 0 && cna.(i) < 0 && (kind.(i) <> 2 || cnb.(i) < 0))
         (Seq.init n Fun.id))
  in
  let timing = v.Model.v_timing in
  let t =
    {
      dist = v.Model.v_dist;
      dtbl = fst (Distance.tables v.Model.v_dist);
      mtbl = snd (Distance.tables v.Model.v_dist);
      ntr = ntraps;
      t_gate1 = timing.Router.Timing.t_gate1;
      t_gate2 = timing.Router.Timing.t_gate2;
      t_move = timing.Router.Timing.t_move;
      nq;
      n;
      kind;
      qa;
      qb;
      stretch = v.Model.v_stretch;
      succs;
      preds;
      cpa;
      cpb;
      cna;
      cnb;
      first_gate;
      sinks;
      comp = Array.make n 0.0;
      outa = Array.make n (-1);
      outb = Array.make n (-1);
      pos = Array.copy placement;
      occ_by;
      latency = 0.0;
      active = false;
      jn = 0;
      j_id = Array.make n 0;
      j_comp = Array.make n 0.0;
      j_outa = Array.make n 0;
      j_outb = Array.make n 0;
      jq = 0;
      j_qubit = Array.make 2 0;
      j_trap = Array.make 2 0;
      old_latency = 0.0;
      dirty = Array.make n false;
      ndirty = 0;
      lo = 0;
    }
  in
  eval_all t;
  t

let eval model placement =
  let t = create model placement in
  t.latency

(* ------------------------------------------------------------ transactions *)

let mark_dirty t i =
  if not t.dirty.(i) then begin
    t.dirty.(i) <- true;
    t.ndirty <- t.ndirty + 1;
    if i < t.lo then t.lo <- i
  end

(* Sweep an increasing cursor over the dirty frontier: every edge (DAG and
   chain) points from a lower id to a higher one, so nodes marked while
   processing id [i] all lie beyond the cursor, each affected gate is
   recomputed exactly once, and its predecessors are final when it is.
   Nodes whose recomputation changes nothing are neither journaled nor
   propagated — the cone stops where the numbers stop moving. *)
let propagate t =
  let dirty = t.dirty and comp = t.comp and outa = t.outa and outb = t.outb in
  let kind = t.kind and succs = t.succs and cna = t.cna and cnb = t.cnb in
  let j_id = t.j_id and j_comp = t.j_comp and j_outa = t.j_outa and j_outb = t.j_outb in
  let i = ref t.lo in
  while t.ndirty > 0 do
    if Array.unsafe_get dirty !i then begin
      Array.unsafe_set dirty !i false;
      t.ndirty <- t.ndirty - 1;
      let oc = Array.unsafe_get comp !i
      and oa = Array.unsafe_get outa !i
      and ob = Array.unsafe_get outb !i in
      recompute t !i;
      if
        Array.unsafe_get comp !i <> oc
        || Array.unsafe_get outa !i <> oa
        || Array.unsafe_get outb !i <> ob
      then begin
        let jn = t.jn in
        Array.unsafe_set j_id jn !i;
        Array.unsafe_set j_comp jn oc;
        Array.unsafe_set j_outa jn oa;
        Array.unsafe_set j_outb jn ob;
        t.jn <- jn + 1;
        (* nodes marked here are always beyond the cursor, so the [lo]
           bookkeeping of {!mark_dirty} is unnecessary *)
        let ss = Array.unsafe_get succs !i in
        for k = 0 to Array.length ss - 1 do
          let s = Array.unsafe_get ss k in
          if Array.unsafe_get kind s <> 0 && not (Array.unsafe_get dirty s) then begin
            Array.unsafe_set dirty s true;
            t.ndirty <- t.ndirty + 1
          end
        done;
        let na = Array.unsafe_get cna !i in
        if na >= 0 && not (Array.unsafe_get dirty na) then begin
          Array.unsafe_set dirty na true;
          t.ndirty <- t.ndirty + 1
        end;
        let nb = Array.unsafe_get cnb !i in
        if nb >= 0 && not (Array.unsafe_get dirty nb) then begin
          Array.unsafe_set dirty nb true;
          t.ndirty <- t.ndirty + 1
        end
      end
    end;
    incr i
  done;
  t.lo <- t.n

let begin_txn t =
  if t.active then
    invalid_arg "Estimator.Delta: transaction already open (undo or commit it first)";
  t.active <- true;
  t.jn <- 0;
  t.jq <- 0;
  t.lo <- t.n;
  t.old_latency <- t.latency

let move_qubit t q trap =
  t.j_qubit.(t.jq) <- q;
  t.j_trap.(t.jq) <- t.pos.(q);
  t.jq <- t.jq + 1;
  t.pos.(q) <- trap

let finish_txn t =
  propagate t;
  if t.jn > 0 then refresh_latency t;
  t.latency -. t.old_latency

let apply_swap t q1 q2 =
  if q1 < 0 || q1 >= t.nq || q2 < 0 || q2 >= t.nq then
    invalid_arg "Estimator.Delta.apply_swap: qubit out of range";
  if q1 = q2 then invalid_arg "Estimator.Delta.apply_swap: identical qubits";
  begin_txn t;
  let p1 = t.pos.(q1) and p2 = t.pos.(q2) in
  move_qubit t q1 p2;
  move_qubit t q2 p1;
  t.occ_by.(p1) <- q2;
  t.occ_by.(p2) <- q1;
  if t.first_gate.(q1) >= 0 then mark_dirty t t.first_gate.(q1);
  if t.first_gate.(q2) >= 0 then mark_dirty t t.first_gate.(q2);
  finish_txn t

let apply_move t q trap =
  if q < 0 || q >= t.nq then invalid_arg "Estimator.Delta.apply_move: qubit out of range";
  if trap < 0 || trap >= Distance.num_traps t.dist then
    invalid_arg "Estimator.Delta.apply_move: trap id out of range";
  if t.occ_by.(trap) >= 0 then
    invalid_arg "Estimator.Delta.apply_move: target trap is occupied";
  begin_txn t;
  let from = t.pos.(q) in
  move_qubit t q trap;
  t.occ_by.(from) <- -1;
  t.occ_by.(trap) <- q;
  if t.first_gate.(q) >= 0 then mark_dirty t t.first_gate.(q);
  finish_txn t

let commit t =
  if not t.active then invalid_arg "Estimator.Delta.commit: no open transaction";
  t.active <- false

let undo t =
  if not t.active then invalid_arg "Estimator.Delta.undo: no open transaction";
  (* restore qubit positions, then rebuild the touched occupancy entries *)
  for k = t.jq - 1 downto 0 do
    let q = t.j_qubit.(k) in
    t.occ_by.(t.pos.(q)) <- -1;
    t.pos.(q) <- t.j_trap.(k)
  done;
  for k = 0 to t.jq - 1 do
    let q = t.j_qubit.(k) in
    t.occ_by.(t.pos.(q)) <- q
  done;
  (* node state restores in reverse journal order *)
  for k = t.jn - 1 downto 0 do
    let i = t.j_id.(k) in
    t.comp.(i) <- t.j_comp.(k);
    t.outa.(i) <- t.j_outa.(k);
    t.outb.(i) <- t.j_outb.(k)
  done;
  t.jq <- 0;
  t.jn <- 0;
  t.latency <- t.old_latency;
  t.active <- false

(* Periodic full re-estimate bounding drift.  The incremental path is
   bit-exact against [eval_all] by construction, so this is expected to be
   a no-op; it returns the largest absolute completion-time correction it
   had to make so callers (and tests) can observe the drift. *)
let resync t =
  if t.active then invalid_arg "Estimator.Delta.resync: transaction open";
  let before = Array.copy t.comp in
  eval_all t;
  let drift = ref 0.0 in
  for i = 0 to t.n - 1 do
    let d = Float.abs (t.comp.(i) -. before.(i)) in
    if d > !drift then drift := d
  done;
  !drift
