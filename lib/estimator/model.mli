(** LEQA-style fast latency estimator (Dousti & Pedram, arXiv:1501.00742):
    predict the mapped latency of a candidate placement without routing,
    scheduling, or simulation.

    The model pairs the {!Distance} tables of the fabric with an
    event-driven mirror of [Simulator.Engine.run] in which every route
    search is replaced by a table lookup.  Instructions issue eagerly in
    the engine's priority order ([Scheduler.Priority.qspr_default])
    whenever their operands are free; a two-qubit gate sends both operands
    at issue time to the trap nearest the midpoint of their positions that
    hosts no bystander ion — the engine's own trap choice — pays the
    modeled travel plus the gate delay, and leaves them co-located there.
    Completions free the operands and ready the QIDG successors.  What the
    mirror drops is channel congestion — acquisition, stalls, detours —
    whose average effect a travel-time stretch recovers: QIDG levels packed
    with many concurrent two-qubit gates contend for shared channels, so
    their moves are stretched by a per-extra-gate factor, a level-granular
    collapse of the router's contention term.

    [estimate] performs no routing, no engine run, and no allocation
    (clock/position scratch is domain-local), so thousands of candidate
    placements can be scored for the cost of one routed evaluation — the
    basis of the placement pre-screening pipeline. *)

type t

val create :
  graph:Fabric.Graph.t ->
  timing:Router.Timing.t ->
  ?distance:Distance.t ->
  ?congestion_alpha:float ->
  ?congestion_threshold:int ->
  Qasm.Dag.t ->
  t
(** Builds the distance tables (one Dijkstra per trap), the engine's issue
    priorities and the per-level two-qubit gate census of the QIDG.
    [distance] supplies prebuilt tables instead (the expensive per-fabric
    half — the service batch path shares one set across all jobs on a
    fabric); it must have been built on the same fabric at this timing's
    turn cost.  [congestion_alpha] (default [0.01]) is the fractional
    travel-time penalty per concurrent two-qubit gate beyond
    [congestion_threshold] (default [2]) in the same level; the defaults
    are calibrated against the measured engine on the paper's Table-1
    circuits (mean absolute relative error about 1%).
    @raise Invalid_argument on a negative alpha or threshold, or a
    [distance] that doesn't match the graph and timing. *)

val distance : t -> Distance.t
val num_qubits : t -> int

type view = {
  v_dist : Distance.t;
  v_timing : Router.Timing.t;
  v_nq : int;
  v_kind : int array;  (** 0 declaration, 1 one-qubit gate, 2 two-qubit gate *)
  v_qa : int array;  (** operand / control *)
  v_qb : int array;  (** target, two-qubit gates only *)
  v_stretch : float array;  (** per-instruction congestion travel multiplier *)
  v_succs : int array array;  (** QIDG successor ids (ids are topological) *)
}
(** Read-only window onto the model's flattened instruction stream, the
    substrate of the incremental {!Delta} model.  The arrays are shared
    with the model (no copy) and must not be mutated. *)

val view : t -> view

val warm_scratch : num_qubits:int -> num_traps:int -> num_instrs:int -> unit
(** Pre-size this domain's estimation scratch for an instance of the given
    dimensions, so the first [estimate] on the domain allocates nothing —
    the service's per-job arena prewarm ([Service.Arena]) calls it before a
    worker maps its first job.  Growth stays monotonic; an already-large
    scratch is untouched. *)

val estimate : t -> int array -> float
(** [estimate t placement] — predicted execution latency in microseconds of
    mapping the program with [placement.(q)] as qubit [q]'s starting trap.
    A pure function of [(t, placement)]: fanning calls out on
    [Ion_util.Domain_pool] is bit-identical to a sequential loop (scratch
    state is per-domain).  Returns [infinity] when the placement puts
    interacting operands in mutually unreachable fabric components.
    @raise Invalid_argument when the placement's arity or trap ids don't
    match the model's program and fabric. *)
