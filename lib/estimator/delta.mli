(** Incremental latency estimation: the delta model behind million-move
    simulated annealing.

    A {!t} materializes one full evaluation of a simplified longest-path
    variant of {!Model} — static min-makespan meeting traps
    ([Distance.meet]) instead of the occupancy-aware scan, operands
    serialized along per-qubit gate chains — as cached per-gate completion
    times and operand positions.  {!apply_swap} and {!apply_move} then
    update the cached state in O(gates whose dependency cone is touched by
    the moved qubits), returning the latency delta; {!undo} reverts a
    rejected move from a journal in the same O(affected) time, so rejected
    proposals are free.  The incremental path is bit-exact against a full
    from-scratch evaluation of the same delta model (both run the identical
    recomputation code over the identical inputs); {!resync} re-runs the
    full pass anyway as a periodic drift bound.

    Instances are mutable and single-owner: fan work across domains by
    giving each worker its own [create], never by sharing a [t].  The delta
    model is a coarser physics than [Model.estimate] (it drops occupancy
    and issue-order coupling), so annealers should score incumbents they
    actually care about with [Model.estimate] or a routed run — see
    [Placer.Annealing.search_delta]. *)

type t

val create : Model.t -> int array -> t
(** [create model placement] materializes the delta state from one full
    evaluation.  The placement must be injective (one ion per trap).
    @raise Invalid_argument on arity mismatch, an out-of-range trap, or a
    duplicate trap assignment. *)

val eval : Model.t -> int array -> float
(** One-shot from-scratch evaluation of the delta model — the reference
    the incremental updates are tested against. *)

val latency : t -> float
(** Current modeled makespan (max completion over chain sinks). *)

val num_qubits : t -> int
val num_traps : t -> int

val trap_of : t -> int -> int
(** Current trap of a qubit. *)

val occupant : t -> int -> int
(** Qubit currently assigned to a trap, or [-1] when the trap is free. *)

val placement : t -> int array
(** Copy of the current placement. *)

val apply_swap : t -> int -> int -> float
(** [apply_swap t q1 q2] exchanges the traps of two distinct qubits and
    returns the latency delta, leaving a transaction open: the caller must
    {!commit} (accept) or {!undo} (reject) before the next apply.
    @raise Invalid_argument on out-of-range or identical qubits, or when a
    transaction is already open. *)

val apply_move : t -> int -> int -> float
(** [apply_move t q trap] relocates qubit [q] to a currently free trap and
    returns the latency delta, leaving a transaction open.
    @raise Invalid_argument when the trap is occupied or out of range, or
    when a transaction is already open. *)

val commit : t -> unit
(** Accept the open transaction. *)

val undo : t -> unit
(** Revert the open transaction exactly — bitwise — from the journal. *)

val in_transaction : t -> bool

val resync : t -> float
(** Full from-scratch re-evaluation of the cached state (the periodic
    drift bound); returns the largest absolute per-gate completion-time
    correction made, expected [0.] since the incremental path is bit-exact.
    @raise Invalid_argument while a transaction is open. *)
