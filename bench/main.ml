(* Benchmark harness.

   Two parts:
   1. Regenerates the rows/series of every table and figure in the paper's
      evaluation (reduced m so the run stays interactive; use
      `dune exec bin/experiments.exe` for the full protocol).
   2. Bechamel micro-benchmarks — one Test.make per table/figure workload
      plus ablations of QSPR's design choices (turn-aware routing, channel
      multiplexing, dual-operand movement). *)

open Bechamel
open Toolkit

let fabric = Qspr.Experiments.fabric ()

let ctx_of ?config name =
  let p = List.assoc name (Circuits.Qecc.all ()) in
  match Qspr.Mapper.create ~fabric ?config p with
  | Ok c -> c
  | Error e -> failwith e

let solution_latency = function
  | Ok (s : Qspr.Mapper.solution) -> s.Qspr.Mapper.latency
  | Error e -> failwith (Qspr.Mapper.error_to_string e)

let engine_latency = function
  | Ok (r : Simulator.Engine.result) -> r.Simulator.Engine.latency
  | Error e -> failwith (Simulator.Engine.string_of_error e)

(* ------------------------------------------------------- table printers *)

let print_tables () =
  print_endline "=== Table 1 (reduced protocol: m=3/6; full: bin/experiments.exe table1) ===";
  let rows = Qspr.Experiments.table1 ~m_small:3 ~m_large:6 () in
  print_string (Qspr.Report.render_table1 rows);
  print_newline ();
  print_endline "=== Table 2 (reduced protocol: m=6; full: bin/experiments.exe table2) ===";
  let rows2 = Qspr.Experiments.table2 ~m:6 () in
  print_string (Qspr.Report.render_table2 rows2);
  print_newline ();
  print_string (Qspr.Experiments.table2_with_paper rows2);
  print_newline ();
  print_endline "=== Sensitivity to m (reduced: ms = 1,2,5) ===";
  List.iter
    (fun (m, mvfb, runs, mc) ->
      Printf.printf "  m=%3d  MVFB %7.1f us (%d runs)  MC %7.1f us\n" m mvfb runs mc)
    (Qspr.Experiments.sensitivity ~ms:[ 1; 2; 5 ] ());
  print_newline ();
  print_endline "=== Figure 5 (turn-aware vs turn-blind routing) ===";
  print_string (Qspr.Experiments.fig5 ());
  print_newline ()

(* -------------------------------------------------------------- benches *)

(* Table 1 workloads: one MVFB local search vs an equal-budget MC search on
   the [[5,1,3]] circuit. *)
let bench_table1 =
  let ctx = ctx_of "[[5,1,3]]" in
  Test.make_grouped ~name:"table1"
    [
      Test.make ~name:"mvfb_m1" (Staged.stage (fun () -> solution_latency (Qspr.Mapper.map_mvfb ~m:1 ctx)));
      Test.make ~name:"mc_runs6"
        (Staged.stage (fun () -> solution_latency (Qspr.Mapper.map_monte_carlo ~runs:6 ctx)));
    ]

(* Table 2 workloads: one QSPR forward run, one QUALE run, and the ideal
   baseline computation, on the mid-size [[9,1,3]] circuit. *)
let bench_table2 =
  let ctx = ctx_of "[[9,1,3]]" in
  let placement = Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:9 in
  Test.make_grouped ~name:"table2"
    [
      Test.make ~name:"qspr_forward_run"
        (Staged.stage (fun () -> engine_latency (Qspr.Mapper.run_forward ctx placement)));
      Test.make ~name:"quale_run" (Staged.stage (fun () -> solution_latency (Qspr.Quale_mode.map ctx)));
      Test.make ~name:"ideal_baseline" (Staged.stage (fun () -> Qspr.Mapper.ideal_latency ctx));
    ]

(* Figure 4 workload: building the 45x85 fabric model (generate cells,
   extract components, build the turn-aware graph). *)
let bench_fig4 =
  Test.make_grouped ~name:"fig4"
    [
      Test.make ~name:"fabric_model_build"
        (Staged.stage (fun () ->
             let lay = Fabric.Layout.quale_45x85 () in
             match Fabric.Component.extract lay with
             | Ok comp -> Fabric.Graph.num_nodes (Fabric.Graph.build comp)
             | Error e -> failwith e));
    ]

(* Figure 5 workload: corner-to-corner Dijkstra under both weight models. *)
let bench_fig5 =
  let comp =
    match Fabric.Component.extract fabric with Ok c -> c | Error e -> failwith e
  in
  let graph = Fabric.Graph.build comp in
  let cong = Router.Congestion.create comp ~channel_capacity:2 ~junction_capacity:2 in
  let traps = Fabric.Component.traps comp in
  let src = Fabric.Graph.trap_node graph 0 in
  let dst = Fabric.Graph.trap_node graph (Array.length traps - 1) in
  let route turn_cost () =
    match
      Router.Dijkstra.shortest_path graph ~weight:(Router.Congestion.weight cong ~turn_cost) ~src ~dst
    with
    | Some r -> r.Router.Dijkstra.cost
    | None -> failwith "no route"
  in
  let astar () =
    match
      Router.Astar.shortest_path graph ~weight:(Router.Congestion.weight cong ~turn_cost:10.0) ~src ~dst
    with
    | Some r -> r.Router.Dijkstra.cost
    | None -> failwith "no route"
  in
  Test.make_grouped ~name:"fig5"
    [
      Test.make ~name:"dijkstra_turn_aware" (Staged.stage (route 10.0));
      Test.make ~name:"dijkstra_turn_blind" (Staged.stage (route 0.0));
      Test.make ~name:"astar_turn_aware" (Staged.stage astar);
    ]

(* Figure 2/3 workload: QASM front end round-trip of the [[5,1,3]] program. *)
let bench_fig23 =
  let text = Qasm.Printer.to_string (Circuits.Qecc.c513 ()) in
  Test.make_grouped ~name:"fig23"
    [
      Test.make ~name:"parse_qasm"
        (Staged.stage (fun () ->
             match Qasm.Parser.parse text with Ok p -> Qasm.Program.num_instrs p | Error e -> failwith e));
      Test.make ~name:"dag_and_critical_path"
        (Staged.stage (fun () ->
             Qspr.Baseline.latency Router.Timing.paper (Circuits.Qecc.c513 ())));
    ]

(* PathFinder (reference [3]) vs greedy sequential routing on a wave of six
   simultaneous nets across the 45x85 fabric. *)
let bench_pathfinder =
  let comp =
    match Fabric.Component.extract fabric with Ok c -> c | Error e -> failwith e
  in
  let graph = Fabric.Graph.build comp in
  let traps = Array.length (Fabric.Component.traps comp) in
  let nets =
    List.init 6 (fun i ->
        {
          Router.Pathfinder.net_id = i;
          src = Fabric.Graph.trap_node graph (i * 7);
          dst = Fabric.Graph.trap_node graph (traps - 1 - (i * 11));
        })
  in
  let capacity (_ : Router.Resource.t) = 2 in
  let pathfinder () =
    match Router.Pathfinder.route_all graph ~capacity nets with
    | Ok o -> o.Router.Pathfinder.iterations
    | Error e -> failwith (Router.Pathfinder.string_of_error e)
  in
  let sequential () =
    (* greedy: route nets one by one under live Eq. 2 congestion *)
    let cong = Router.Congestion.create comp ~channel_capacity:2 ~junction_capacity:2 in
    List.iter
      (fun net ->
        match
          Router.Dijkstra.shortest_path graph
            ~weight:(Router.Congestion.weight cong ~turn_cost:10.0)
            ~src:net.Router.Pathfinder.src ~dst:net.Router.Pathfinder.dst
        with
        | Some r ->
            let p = Router.Path.of_result ~src:net.Router.Pathfinder.src ~dst:net.Router.Pathfinder.dst r in
            List.iter (Router.Congestion.acquire cong) (Router.Path.resources p)
        | None -> failwith "no route")
      nets;
    Router.Congestion.total_in_flight cong
  in
  Test.make_grouped ~name:"pathfinder"
    [
      Test.make ~name:"negotiated_wave6" (Staged.stage pathfinder);
      Test.make ~name:"greedy_sequential_wave6" (Staged.stage sequential);
    ]

(* Allocation-free routing hot path: the same wave of trap-to-trap queries
   with per-call fresh arrays vs one reused workspace.  The reused variant
   should show O(path) minor allocation per query instead of O(nodes); the
   minor_allocated column of BENCH_pr1.json quantifies it. *)
let bench_router_workspace =
  let comp =
    match Fabric.Component.extract fabric with Ok c -> c | Error e -> failwith e
  in
  let graph = Fabric.Graph.build comp in
  let cong = Router.Congestion.create comp ~channel_capacity:2 ~junction_capacity:2 in
  let w = Router.Congestion.weight cong ~turn_cost:10.0 in
  let ntraps = Array.length (Fabric.Component.traps comp) in
  let queries =
    List.init 8 (fun i ->
        ( Fabric.Graph.trap_node graph (i * 13 mod ntraps),
          Fabric.Graph.trap_node graph (ntraps - 1 - (i * 29 mod ntraps)) ))
  in
  let ws = Router.Workspace.create () in
  let sum_costs shortest =
    List.fold_left
      (fun acc (src, dst) ->
        match shortest ~src ~dst with Some r -> acc +. r.Router.Dijkstra.cost | None -> acc)
      0.0 queries
  in
  Test.make_grouped ~name:"workspace"
    [
      Test.make ~name:"dijkstra_fresh"
        (Staged.stage (fun () -> sum_costs (Router.Dijkstra.shortest_path graph ~weight:w)));
      Test.make ~name:"dijkstra_reused"
        (Staged.stage (fun () ->
             sum_costs (Router.Dijkstra.shortest_path ~workspace:ws graph ~weight:w)));
      Test.make ~name:"astar_fresh"
        (Staged.stage (fun () -> sum_costs (Router.Astar.shortest_path graph ~weight:w)));
      Test.make ~name:"astar_reused"
        (Staged.stage (fun () ->
             sum_costs (Router.Astar.shortest_path ~workspace:ws graph ~weight:w)));
    ]

(* Placement search fan-out: the same Monte-Carlo and MVFB searches run
   sequentially and on a domain pool.  Results are bit-identical by
   construction (test/test_parallel.ml asserts it); this group measures the
   wall-clock effect of QSPR_JOBS on this machine. *)
let bench_parallel =
  let ctx = ctx_of "[[5,1,3]]" in
  Test.make_grouped ~name:"parallel"
    [
      Test.make ~name:"mc_runs6_jobs1"
        (Staged.stage (fun () -> solution_latency (Qspr.Mapper.map_monte_carlo ~runs:6 ~jobs:1 ctx)));
      Test.make ~name:"mc_runs6_jobs2"
        (Staged.stage (fun () -> solution_latency (Qspr.Mapper.map_monte_carlo ~runs:6 ~jobs:2 ctx)));
      Test.make ~name:"mvfb_m2_jobs1"
        (Staged.stage (fun () -> solution_latency (Qspr.Mapper.map_mvfb ~m:2 ~jobs:1 ctx)));
      Test.make ~name:"mvfb_m2_jobs2"
        (Staged.stage (fun () -> solution_latency (Qspr.Mapper.map_mvfb ~m:2 ~jobs:2 ctx)));
    ]

(* Sensitivity workload: the single forward evaluation that the m-sweep
   repeats. *)
let bench_sensitivity =
  let ctx = ctx_of "[[5,1,3]]" in
  let placement = Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:5 in
  Test.make_grouped ~name:"sensitivity"
    [
      Test.make ~name:"forward_evaluation"
        (Staged.stage (fun () -> engine_latency (Qspr.Mapper.run_forward ctx placement)));
    ]

(* One forward schedule-and-route evaluation per benchmark circuit: how the
   mapper's cost scales across Table 2's workloads. *)
let bench_circuits =
  Test.make_grouped ~name:"circuits"
    (List.map
       (fun (name, p) ->
         let ctx =
           match Qspr.Mapper.create ~fabric p with Ok c -> c | Error e -> failwith e
         in
         let placement =
           Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:(Qasm.Program.num_qubits p)
         in
         Test.make ~name:(String.map (function ',' -> '_' | c -> c) name)
           (Staged.stage (fun () -> engine_latency (Qspr.Mapper.run_forward ctx placement))))
       (Circuits.Qecc.all ()))

(* Estimator workloads: one fast estimate vs one full schedule-and-route of
   the same placement (their ratio is the per-placement speedup recorded in
   BENCH_pr5.json), model construction, and the pre-screened vs exhaustive
   Monte-Carlo search. *)
let bench_estimator =
  let ctx = ctx_of "[[9,1,3]]" in
  let placement = Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:9 in
  let model = Qspr.Mapper.estimator_model ctx in
  Test.make_grouped ~name:"estimator"
    [
      Test.make ~name:"estimate_only"
        (Staged.stage (fun () -> Estimator.Model.estimate model placement));
      Test.make ~name:"full_route"
        (Staged.stage (fun () -> engine_latency (Qspr.Mapper.run_forward ctx placement)));
      Test.make ~name:"model_build"
        (Staged.stage (fun () ->
             Estimator.Model.num_qubits
               (Estimator.Model.create ~graph:(Qspr.Mapper.graph ctx) ~timing:Router.Timing.paper
                  (Qspr.Mapper.dag ctx))));
      Test.make ~name:"mc25_plain"
        (Staged.stage (fun () ->
             solution_latency (Qspr.Mapper.map_monte_carlo ~runs:25 ~prescreen_k:0 ctx)));
      Test.make ~name:"mc25_prescreen5"
        (Staged.stage (fun () ->
             solution_latency (Qspr.Mapper.map_monte_carlo ~runs:25 ~prescreen_k:5 ctx)));
    ]

(* Delta-estimation workloads (PR 6): one transactional swap+undo pair on
   the incremental model vs a from-scratch estimate of the same placement,
   plus the cost of materializing the delta state. *)
let bench_delta =
  let ctx = ctx_of "[[9,1,3]]" in
  let placement = Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:9 in
  let model = Qspr.Mapper.estimator_model ctx in
  let delta = Estimator.Delta.create model placement in
  Test.make_grouped ~name:"delta"
    [
      Test.make ~name:"swap_undo"
        (Staged.stage (fun () ->
             ignore (Estimator.Delta.apply_swap delta 0 5);
             Estimator.Delta.undo delta));
      Test.make ~name:"full_estimate"
        (Staged.stage (fun () -> Estimator.Model.estimate model placement));
      Test.make ~name:"state_create"
        (Staged.stage (fun () -> Estimator.Delta.latency (Estimator.Delta.create model placement)));
    ]

(* Portfolio workloads (PR 6): the full five-strategy race at a small
   budget, sequentially and fanned over two domains (bit-identical by
   construction; test/test_delta.ml asserts it). *)
let bench_portfolio =
  let ctx = ctx_of "[[5,1,3]]" in
  Test.make_grouped ~name:"portfolio"
    [
      Test.make ~name:"race_m2_jobs1"
        (Staged.stage (fun () ->
             solution_latency (Qspr.Mapper.map_portfolio ~m:2 ~sa_moves:2000 ~jobs:1 ctx)));
      Test.make ~name:"race_m2_jobs2"
        (Staged.stage (fun () ->
             solution_latency (Qspr.Mapper.map_portfolio ~m:2 ~sa_moves:2000 ~jobs:2 ctx)));
    ]

(* Fault-injection workloads: degrading the 45x85 fabric, one hardened
   (retry-cascade) map of [[5,1,3]] on a degraded fabric, and a small
   survivability campaign on a linear fabric. *)
let bench_faults =
  let lay = Qspr.Experiments.fabric () in
  let comp =
    match Fabric.Component.extract lay with Ok c -> c | Error e -> failwith e
  in
  let faults = Fault.sample ~seed:2012 ~index:0 ~n:10 comp in
  let degraded =
    match Fault.apply lay faults with
    | Ok a -> a.Fault.layout
    | Error e -> failwith e
  in
  let config = Qspr.Config.(default |> with_m 2) in
  let dctx =
    match Qspr.Mapper.create ~fabric:degraded ~config (Circuits.Qecc.c513 ()) with
    | Ok c -> c
    | Error e -> failwith e
  in
  let linear = Fabric.Layout.linear ~traps:8 () in
  let program = Circuits.Qecc.c513 () in
  Test.make_grouped ~name:"faults"
    [
      Test.make ~name:"apply_10_faults"
        (Staged.stage (fun () ->
             match Fault.apply lay faults with
             | Ok a -> List.length a.Fault.faulted_cells
             | Error e -> failwith e));
      Test.make ~name:"map_robust_degraded"
        (Staged.stage (fun () -> solution_latency (Qspr.Mapper.map_robust dctx)));
      Test.make ~name:"campaign_linear_2x2"
        (Staged.stage (fun () ->
             match
               Fault.campaign ~config ~seed:7 ~levels:[ 0; 1 ] ~trials:2 ~fabric:linear program
             with
             | Ok r -> r.Fault.baseline_latency
             | Error e -> failwith e));
    ]

(* Incremental routing (PR 5): the same congested 12-net wave negotiated
   under the dirty-net schedule and the legacy full-reroute schedule, plus
   the engine's event-order routing with and without a warm cross-run route
   cache.  The deterministic search-count reductions are recorded in the
   [router] summary of BENCH_pr5.json; these benches measure the wall-clock
   side of the same change.  Ten crossing nets at the paper's channel
   capacity negotiate for several iterations and converge under both
   schedules. *)
let bench_router =
  let comp =
    match Fabric.Component.extract fabric with Ok c -> c | Error e -> failwith e
  in
  let graph = Fabric.Graph.build comp in
  let traps = Array.length (Fabric.Component.traps comp) in
  let nets =
    List.init 10 (fun i ->
        {
          Router.Pathfinder.net_id = i;
          src = Fabric.Graph.trap_node graph (i * 5 mod traps);
          dst = Fabric.Graph.trap_node graph (traps - 1 - (i * 9 mod traps));
        })
  in
  let capacity (_ : Router.Resource.t) = 2 in
  let route incremental () =
    match Router.Pathfinder.route_all graph ~incremental ~capacity nets with
    | Ok o -> o.Router.Pathfinder.searches
    | Error e -> failwith (Router.Pathfinder.string_of_error e)
  in
  let ctx = ctx_of "[[9,1,3]]" in
  let placement = Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:9 in
  let cfg = Qspr.Mapper.config ctx in
  let engine route_cache () =
    match
      Simulator.Engine.run ~graph:(Qspr.Mapper.graph ctx) ~timing:cfg.Qspr.Config.timing
        ~policy:cfg.Qspr.Config.qspr_policy ~dag:(Qspr.Mapper.dag ctx)
        ~priorities:(Qspr.Mapper.qspr_priorities ctx) ~placement ?route_cache ()
    with
    | Ok r -> r.Simulator.Engine.latency
    | Error e -> failwith (Simulator.Engine.string_of_error e)
  in
  let warm = Router.Route_cache.create () in
  Test.make_grouped ~name:"router"
    [
      Test.make ~name:"route_all_incremental_wave10" (Staged.stage (route true));
      Test.make ~name:"route_all_legacy_wave10" (Staged.stage (route false));
      Test.make ~name:"engine_no_cache" (Staged.stage (engine None));
      Test.make ~name:"engine_warm_cache" (Staged.stage (engine (Some warm)));
    ]

(* Quantum-substrate workloads: tableau simulation of the largest benchmark
   and dense state-vector simulation of the smallest. *)
let bench_quantum =
  let big = List.assoc "[[23,1,7]]" (Circuits.Qecc.all ()) in
  let small = Circuits.Qecc.c513 () in
  Test.make_grouped ~name:"quantum"
    [
      Test.make ~name:"stabilizer_23q"
        (Staged.stage (fun () ->
             match Quantum.Stabilizer.run_program big with
             | Ok t -> Quantum.Stabilizer.num_qubits t
             | Error e -> failwith e));
      Test.make ~name:"statevec_5q"
        (Staged.stage (fun () -> Quantum.Statevec.norm (Quantum.Statevec.run_program small)));
      Test.make ~name:"canonical_form_23q"
        (Staged.stage
           (let t = match Quantum.Stabilizer.run_program big with Ok t -> t | Error e -> failwith e in
            fun () -> List.length (Quantum.Stabilizer.canonical_stabilizers t)));
    ]

(* Ablations (DESIGN.md): each disables one QSPR design choice on the
   [[9,1,3]] workload; compare latencies in the printed summary and costs in
   the timing table. *)
let ablation_policies =
  [
    ("full_qspr", Simulator.Engine.qspr_policy);
    ("turn_blind", { Simulator.Engine.qspr_policy with Simulator.Engine.turn_aware = false });
    ("capacity_1", { Simulator.Engine.qspr_policy with Simulator.Engine.channel_capacity = 1 });
    ("dest_pinned", { Simulator.Engine.qspr_policy with Simulator.Engine.routing = Simulator.Engine.Dest_pinned });
    ("single_trap_candidate", { Simulator.Engine.qspr_policy with Simulator.Engine.trap_candidates = 1 });
  ]

let bench_ablation =
  let ctx = ctx_of "[[9,1,3]]" in
  let placement = Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:9 in
  let prios = Qspr.Mapper.qspr_priorities ctx in
  Test.make_grouped ~name:"ablation"
    (List.map
       (fun (name, policy) ->
         Test.make ~name
           (Staged.stage (fun () ->
                engine_latency (Qspr.Mapper.run_with ctx ~policy ~priorities:prios ~placement))))
       ablation_policies)

let print_priority_study () =
  print_endline "=== Scheduling-priority ablation ([[9,1,3]]) ===";
  List.iter
    (fun (name, latency) -> Printf.printf "  %-26s %8.1f us\n" name latency)
    (Qspr.Experiments.priority_study ());
  print_newline ()

let print_ablation_latencies () =
  print_endline "=== Ablation latencies ([[9,1,3]], center placement) ===";
  let ctx = ctx_of "[[9,1,3]]" in
  let placement = Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:9 in
  let prios = Qspr.Mapper.qspr_priorities ctx in
  List.iter
    (fun (name, policy) ->
      let latency = engine_latency (Qspr.Mapper.run_with ctx ~policy ~priorities:prios ~placement) in
      Printf.printf "  %-22s %8.1f us\n" name latency)
    ablation_policies;
  print_newline ()

(* ------------------------------------------------------------- reporting *)

let run_benchmarks () =
  let tests =
    Test.make_grouped ~name:"qspr"
      [
        bench_table1;
        bench_table2;
        bench_fig4;
        bench_fig5;
        bench_fig23;
        bench_pathfinder;
        bench_router;
        bench_router_workspace;
        bench_parallel;
        bench_sensitivity;
        bench_estimator;
        bench_delta;
        bench_portfolio;
        bench_faults;
        bench_circuits;
        bench_quantum;
        bench_ablation;
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock; minor_allocated ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let estimate_of results name =
    match Hashtbl.find_opt results name with
    | Some ols -> ( match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan)
    | None -> nan
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  print_endline "=== Bechamel timings (monotonic clock + minor words, per run) ===";
  let rows =
    Hashtbl.fold (fun name _ acc -> (name, estimate_of times name, estimate_of allocs name) :: acc) times []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns, words) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.2f ns" ns
      in
      Printf.printf "  %-40s %s  %12.0f w\n" name pretty words)
    rows;
  rows

(* The headline estimator numbers for BENCH_pr5.json: per-placement speedup
   (measured full-route ns / estimate ns from the timing rows), the mean
   relative accuracy against the engine, and the pre-screened search's
   evaluation savings. *)
let estimator_summary rows =
  let module J = Ion_util.Json in
  let ns_of suffix =
    match List.find_opt (fun (name, _, _) -> String.ends_with ~suffix name) rows with
    | Some (_, ns, _) -> ns
    | None -> nan
  in
  let est_ns = ns_of "estimator/estimate_only" and route_ns = ns_of "estimator/full_route" in
  let accuracy = Qspr.Experiments.estimator_accuracy () in
  let mean_rel_err =
    List.fold_left (fun acc (_, _, _, rel) -> acc +. Float.abs rel) 0.0 accuracy
    /. float_of_int (List.length accuracy)
  in
  let s = Qspr.Experiments.prescreen_study () in
  Printf.printf "=== Estimator summary ([[9,1,3]]) ===\n";
  Printf.printf "  per-placement speedup : %.0fx (%.1f us route vs %.2f us estimate)\n"
    (route_ns /. est_ns) (route_ns /. 1e3) (est_ns /. 1e3);
  Printf.printf "  mean relative error   : %.1f%% over the Table-1 circuits\n" (100.0 *. mean_rel_err);
  Printf.printf "  prescreen 25->5       : %d vs %d engine evals, %.0f vs %.0f us best latency\n\n"
    s.Qspr.Experiments.prescreened_evals s.Qspr.Experiments.plain_evals
    s.Qspr.Experiments.prescreened_latency s.Qspr.Experiments.plain_latency;
  J.Obj
    [
      ("circuit", J.String "[[9,1,3]]");
      ("estimate_ns_per_placement", J.Float est_ns);
      ("route_ns_per_placement", J.Float route_ns);
      ("per_placement_speedup", J.Float (route_ns /. est_ns));
      ("mean_relative_error", J.Float mean_rel_err);
      ( "accuracy",
        J.List
          (List.map
             (fun (name, est, meas, rel) ->
               J.Obj
                 [
                   ("circuit", J.String name);
                   ("estimated_us", J.Float est);
                   ("measured_us", J.Float meas);
                   ("relative_error", J.Float rel);
                 ])
             accuracy) );
      ( "prescreen",
        J.Obj
          [
            ("runs", J.Int 25);
            ("k", J.Int 5);
            ("plain_engine_evals", J.Int s.Qspr.Experiments.plain_evals);
            ("prescreened_engine_evals", J.Int s.Qspr.Experiments.prescreened_evals);
            ("plain_best_us", J.Float s.Qspr.Experiments.plain_latency);
            ("prescreened_best_us", J.Float s.Qspr.Experiments.prescreened_latency);
          ] );
    ]

(* The headline survivability numbers for BENCH_pr5.json: a full fault
   campaign of [[5,1,3]] on a linear fabric whose single channel row makes
   every blocked segment count. *)
let faults_summary () =
  let config = Qspr.Config.(default |> with_m 2) in
  match
    Fault.campaign ~config ~seed:2012 ~levels:[ 0; 1; 2; 4 ] ~trials:5
      ~fabric:(Fabric.Layout.linear ~traps:8 ())
      (Circuits.Qecc.c513 ())
  with
  | Error e -> failwith e
  | Ok r ->
      Format.printf "=== Fault survivability ([[5,1,3]], linear fabric) ===@.@[<v>%a@]@.@."
        Fault.pp r;
      Fault.to_json r

(* The headline incremental-routing numbers for BENCH_pr5.json: per Table-1
   circuit, the engine's single-net search count without a cache (the legacy
   baseline) versus a warm cross-run cache, with bit-identical latencies in
   both; plus the PathFinder dirty-net schedule's search count against the
   legacy full-reroute schedule on a congested wave.  All counts are
   deterministic — wall-clock lives in the timing rows. *)
let router_summary () =
  let module J = Ion_util.Json in
  Printf.printf "=== Incremental routing summary (center placements) ===\n";
  let engine_rows =
    List.map
      (fun (name, p) ->
        let ctx =
          match Qspr.Mapper.create ~fabric p with Ok c -> c | Error e -> failwith e
        in
        let placement =
          Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:(Qasm.Program.num_qubits p)
        in
        let cfg = Qspr.Mapper.config ctx in
        let run route_cache =
          match
            Simulator.Engine.run ~graph:(Qspr.Mapper.graph ctx) ~timing:cfg.Qspr.Config.timing
              ~policy:cfg.Qspr.Config.qspr_policy ~dag:(Qspr.Mapper.dag ctx)
              ~priorities:(Qspr.Mapper.qspr_priorities ctx) ~placement ?route_cache ()
          with
          | Ok r -> r
          | Error e -> failwith (Simulator.Engine.string_of_error e)
        in
        let legacy = run None in
        let cache = Router.Route_cache.create () in
        let _cold = run (Some cache) in
        let warm = run (Some cache) in
        let identical =
          Int64.equal
            (Int64.bits_of_float legacy.Simulator.Engine.latency)
            (Int64.bits_of_float warm.Simulator.Engine.latency)
          && legacy.Simulator.Engine.trace = warm.Simulator.Engine.trace
        in
        if not identical then failwith (name ^ ": cached engine run diverged from uncached");
        if warm.Simulator.Engine.route_searches >= legacy.Simulator.Engine.route_searches then
          failwith (name ^ ": warm cache did not reduce single-net searches");
        Printf.printf "  %-12s searches %4d -> %4d (%d cache hits), latency identical\n" name
          legacy.Simulator.Engine.route_searches warm.Simulator.Engine.route_searches
          warm.Simulator.Engine.route_cache_hits;
        J.Obj
          [
            ("circuit", J.String name);
            ("searches_no_cache", J.Int legacy.Simulator.Engine.route_searches);
            ("searches_warm_cache", J.Int warm.Simulator.Engine.route_searches);
            ("cache_hits", J.Int warm.Simulator.Engine.route_cache_hits);
            ("latency_identical", J.Bool identical);
          ])
      (Circuits.Qecc.all ())
  in
  let comp =
    match Fabric.Component.extract fabric with Ok c -> c | Error e -> failwith e
  in
  let graph = Fabric.Graph.build comp in
  let traps = Array.length (Fabric.Component.traps comp) in
  let nets =
    List.init 10 (fun i ->
        {
          Router.Pathfinder.net_id = i;
          src = Fabric.Graph.trap_node graph (i * 5 mod traps);
          dst = Fabric.Graph.trap_node graph (traps - 1 - (i * 9 mod traps));
        })
  in
  let capacity (_ : Router.Resource.t) = 2 in
  let route incremental =
    match Router.Pathfinder.route_all graph ~incremental ~capacity nets with
    | Ok o -> o
    | Error e -> failwith (Router.Pathfinder.string_of_error e)
  in
  let inc = route true and leg = route false in
  if inc.Router.Pathfinder.overused > 0 || leg.Router.Pathfinder.overused > 0 then
    failwith "router wave10: negotiation did not converge";
  if inc.Router.Pathfinder.searches >= leg.Router.Pathfinder.searches then
    failwith "router wave10: dirty-net schedule did not reduce searches";
  Printf.printf
    "  pathfinder wave10: %d searches incremental vs %d legacy (%d vs %d iterations)\n\n"
    inc.Router.Pathfinder.searches leg.Router.Pathfinder.searches inc.Router.Pathfinder.iterations
    leg.Router.Pathfinder.iterations;
  J.Obj
    [
      ("engine_cache", J.List engine_rows);
      ( "pathfinder_wave10",
        J.Obj
          [
            ("incremental_searches", J.Int inc.Router.Pathfinder.searches);
            ("legacy_searches", J.Int leg.Router.Pathfinder.searches);
            ("incremental_iterations", J.Int inc.Router.Pathfinder.iterations);
            ("legacy_iterations", J.Int leg.Router.Pathfinder.iterations);
            ("incremental_overused", J.Int inc.Router.Pathfinder.overused);
            ("legacy_overused", J.Int leg.Router.Pathfinder.overused);
          ] );
    ]

(* The headline delta-estimation numbers for BENCH_pr6.json: per Table-1
   circuit, the throughput of a greedy delta-SA proposal loop against the
   same loop evaluating every candidate with a from-scratch estimate.  Each
   side is timed over best-of-3 windows so scheduler noise cannot mask the
   structural gap; the acceptance floor (>= 10x on every circuit) is
   enforced here, not just reported.  A search_delta run on [[9,1,3]]
   records the incumbent-latency-vs-move-count curve and how few engine
   routes the million-move loop actually pays for. *)
let delta_summary () =
  let module J = Ion_util.Json in
  Printf.printf "=== Delta estimation summary (greedy proposal loops) ===\n";
  let throughput_rows =
    List.map
      (fun (name, p) ->
        let ctx = ctx_of name in
        let model = Qspr.Mapper.estimator_model ctx in
        let comp = Qspr.Mapper.component ctx in
        let nq = Qasm.Program.num_qubits p in
        let num_traps = Array.length (Fabric.Component.traps comp) in
        let pool = Array.of_list (Placer.Center.center_traps comp (min (3 * nq) num_traps)) in
        let placement = Placer.Center.place comp ~num_qubits:nq in
        (* delta side: the hot path of search_delta — draw, apply, commit
           or undo *)
        let delta_loop moves =
          let rng = Ion_util.Rng.create 2012 in
          let delta = Estimator.Delta.create model placement in
          let tracker = Placer.Annealing.Proposal.create ~num_traps pool placement in
          let t0 = Unix.gettimeofday () in
          for _ = 1 to moves do
            match Placer.Annealing.Proposal.draw tracker rng ~num_qubits:nq with
            | Placer.Annealing.Proposal.Stay -> ()
            | Placer.Annealing.Proposal.Swap (i, j) ->
                if Estimator.Delta.apply_swap delta i j <= 0.0 then Estimator.Delta.commit delta
                else Estimator.Delta.undo delta
            | Placer.Annealing.Proposal.Relocate (q, dst) ->
                let src = Estimator.Delta.trap_of delta q in
                if Estimator.Delta.apply_move delta q dst <= 0.0 then begin
                  Estimator.Delta.commit delta;
                  Placer.Annealing.Proposal.relocate tracker ~src ~dst
                end
                else Estimator.Delta.undo delta
          done;
          float_of_int moves /. Float.max 1e-9 (Unix.gettimeofday () -. t0)
        in
        (* full-estimate side: the identical loop, but every candidate pays
           one from-scratch evaluation (the pre-PR-6 annealer's cost) *)
        let full_loop moves =
          let rng = Ion_util.Rng.create 2012 in
          let tracker = Placer.Annealing.Proposal.create ~num_traps pool placement in
          let current = Array.copy placement in
          let cur = ref (Estimator.Model.estimate model current) in
          let t0 = Unix.gettimeofday () in
          for _ = 1 to moves do
            match Placer.Annealing.Proposal.draw tracker rng ~num_qubits:nq with
            | Placer.Annealing.Proposal.Stay -> ()
            | Placer.Annealing.Proposal.Swap (i, j) ->
                let cand = Array.copy current in
                let tmp = cand.(i) in
                cand.(i) <- cand.(j);
                cand.(j) <- tmp;
                let lat = Estimator.Model.estimate model cand in
                if lat <= !cur then begin
                  Array.blit cand 0 current 0 nq;
                  cur := lat
                end
            | Placer.Annealing.Proposal.Relocate (q, dst) ->
                let cand = Array.copy current in
                let src = cand.(q) in
                cand.(q) <- dst;
                let lat = Estimator.Model.estimate model cand in
                if lat <= !cur then begin
                  Array.blit cand 0 current 0 nq;
                  cur := lat;
                  Placer.Annealing.Proposal.relocate tracker ~src ~dst
                end
          done;
          float_of_int moves /. Float.max 1e-9 (Unix.gettimeofday () -. t0)
        in
        let best_of k f arg =
          let best = ref 0.0 in
          for _ = 1 to k do
            let v = f arg in
            if v > !best then best := v
          done;
          !best
        in
        ignore (delta_loop 2_000);
        let dmps = best_of 3 delta_loop 60_000 in
        ignore (full_loop 200);
        let fmps = best_of 3 full_loop 4_000 in
        let ratio = dmps /. fmps in
        Printf.printf "  %-12s delta %9.0f moves/s vs full-SA %8.0f evals/s — %.1fx\n" name dmps
          fmps ratio;
        if ratio < 10.0 then
          failwith
            (Printf.sprintf "%s: delta-SA only %.1fx faster than full-estimate SA (need >= 10x)"
               name ratio);
        J.Obj
          [
            ("circuit", J.String name);
            ("delta_moves_per_s", J.Float dmps);
            ("full_estimate_evals_per_s", J.Float fmps);
            ("speedup", J.Float ratio);
          ])
      (Circuits.Qecc.all ())
  in
  let ctx = ctx_of "[[9,1,3]]" in
  let comp = Qspr.Mapper.component ctx in
  let model = Qspr.Mapper.estimator_model ctx in
  let curve_outcome =
    match
      Placer.Annealing.search_delta
        ~rng:(Ion_util.Rng.create 2012)
        ~moves:20_000 ~model
        ~evaluate:(Qspr.Mapper.run_forward ctx)
        comp ~num_qubits:9
    with
    | Ok o -> o
    | Error e -> failwith (Simulator.Engine.string_of_error e)
  in
  Printf.printf
    "  [[9,1,3]] search_delta: %d moves, %d accepted, %d engine routes, best %.1f us (estimate %.1f us, drift %.1e)\n\n"
    curve_outcome.Placer.Annealing.moves curve_outcome.Placer.Annealing.accepted
    curve_outcome.Placer.Annealing.engine_evals
    curve_outcome.Placer.Annealing.result.Simulator.Engine.latency
    curve_outcome.Placer.Annealing.best_estimate curve_outcome.Placer.Annealing.max_drift;
  J.Obj
    [
      ("throughput", J.List throughput_rows);
      ( "incumbent_curve",
        J.Obj
          [
            ("circuit", J.String "[[9,1,3]]");
            ("moves", J.Int curve_outcome.Placer.Annealing.moves);
            ("accepted", J.Int curve_outcome.Placer.Annealing.accepted);
            ("engine_routes", J.Int curve_outcome.Placer.Annealing.engine_evals);
            ("best_routed_us", J.Float curve_outcome.Placer.Annealing.result.Simulator.Engine.latency);
            ("best_estimate_us", J.Float curve_outcome.Placer.Annealing.best_estimate);
            ("max_drift", J.Float curve_outcome.Placer.Annealing.max_drift);
            ( "curve",
              J.List
                (List.map
                   (fun (move, est) -> J.Obj [ ("move", J.Int move); ("estimate_us", J.Float est) ])
                   curve_outcome.Placer.Annealing.curve) );
          ] );
    ]

(* The headline portfolio numbers for BENCH_pr6.json: per Table-1 circuit
   the five-strategy race at a matched budget never loses to the classic
   routed anneal (enforced, not just reported), with the winner and every
   strategy's outcome recorded. *)
let portfolio_summary () =
  let module J = Ion_util.Json in
  Printf.printf "=== Portfolio race summary (m=3, sa_moves=4000) ===\n";
  let rows =
    List.map
      (fun (name, _) ->
        let ctx = ctx_of name in
        let anneal = solution_latency (Qspr.Mapper.map_annealing ~evaluations:3 ctx) in
        let s =
          match Qspr.Mapper.map_portfolio ~m:3 ~sa_moves:4_000 ctx with
          | Ok s -> s
          | Error e -> failwith (name ^ ": " ^ Qspr.Mapper.error_to_string e)
        in
        if s.Qspr.Mapper.latency > anneal then
          failwith
            (Printf.sprintf "%s: portfolio %.1f us lost to the classic anneal %.1f us" name
               s.Qspr.Mapper.latency anneal);
        let winner =
          match
            List.find_opt
              (fun (a : Qspr.Mapper.attempt) ->
                match a.Qspr.Mapper.outcome with
                | Ok l -> l = s.Qspr.Mapper.latency
                | Error _ -> false)
              s.Qspr.Mapper.attempts
          with
          | Some a -> a.Qspr.Mapper.stage
          | None -> "?"
        in
        Printf.printf "  %-12s %8.1f us (winner %-20s)  anneal %8.1f us\n" name
          s.Qspr.Mapper.latency winner anneal;
        J.Obj
          [
            ("circuit", J.String name);
            ("portfolio_us", J.Float s.Qspr.Mapper.latency);
            ("classic_anneal_us", J.Float anneal);
            ("winner", J.String winner);
            ( "strategies",
              J.List
                (List.map
                   (fun (a : Qspr.Mapper.attempt) ->
                     J.Obj
                       [
                         ("stage", J.String a.Qspr.Mapper.stage);
                         ( "outcome",
                           match a.Qspr.Mapper.outcome with
                           | Ok l -> J.Float l
                           | Error e -> J.String (Qspr.Mapper.error_to_string e) );
                       ])
                   s.Qspr.Mapper.attempts) );
          ])
      (Circuits.Qecc.all ())
  in
  print_newline ();
  J.List rows

(* The headline service numbers for BENCH_pr7.json: the six Table-1
   circuits submitted as one `qspr serve` batch against the shared fabric.
   Three contracts are enforced here, not just reported: (1) every batch
   response is bit-identical to an independent Mapper run under the same
   seed and budget (same latency bits, same certificate digest); (2) the
   shared warm caches make the batch do strictly fewer route searches and
   lower-bound builds than six cold single-job services; (3) the batch's
   deterministic response encodings are byte-identical at jobs=1/2/4, and
   the warm batch is not slower than the cold services (1.15x slack for
   scheduler noise on loaded machines).  Reported: circuits/sec at each
   width, p50/p99 per-job CPU, aggregate cache hit rate, and the group's
   GC footprint as full [Gc.stat] deltas (words promoted to the major
   heap and major collections across every batch, plus peak heap). *)
let throughput_summary () =
  let module J = Ion_util.Json in
  let module P = Service.Protocol in
  let module S = Service.Scheduler in
  Printf.printf "=== Service throughput (Table-1 batch, mvfb m=2) ===\n";
  let gs0 = Gc.stat () in
  let jobs =
    List.mapi
      (fun i (name, _) ->
        P.make_job ~seed:(2012 + i) ~placer:"mvfb" ~m:2 ~id:name (P.Builtin name))
      (Circuits.Qecc.all ())
  in
  let n = List.length jobs in
  let batch_at width =
    let t = S.create ~limits:{ S.default_limits with S.jobs = width } () in
    let t0 = Unix.gettimeofday () in
    let responses = S.run_batch t jobs in
    (responses, Unix.gettimeofday () -. t0)
  in
  let warm, warm_s = batch_at 1 in
  let widths =
    List.map
      (fun width ->
        let responses, elapsed = batch_at width in
        List.iter2
          (fun a b ->
            if
              not
                (String.equal
                   (P.response_to_line ~deterministic:true a)
                   (P.response_to_line ~deterministic:true b))
            then failwith (Printf.sprintf "service: jobs=%d diverged from jobs=1 on %s" width a.P.job_id))
          warm responses;
        (width, elapsed))
      [ 1; 2; 4 ]
  in
  (* six cold single-job services: every job pays its own distance tables
     and route searches *)
  let cold_t0 = Unix.gettimeofday () in
  let cold = List.map (fun j -> S.create () |> fun t -> S.submit t j) jobs in
  let cold_s = Unix.gettimeofday () -. cold_t0 in
  let completed_or_die label (r : P.response) =
    match r.P.verdict with
    | P.Completed { latency_us; certificate_digest; certificate_valid; _ } ->
        (latency_us, certificate_digest, certificate_valid)
    | _ -> failwith (Printf.sprintf "service: %s %s did not complete" label r.P.job_id)
  in
  let searches responses =
    List.fold_left
      (fun acc (r : P.response) ->
        match r.P.cache with
        | Some c -> acc + c.P.misses + c.P.bound_builds
        | None -> failwith "service: cache counters missing")
      0 responses
  in
  let hit_rate responses =
    let hits, lookups =
      List.fold_left
        (fun (h, l) (r : P.response) ->
          match r.P.cache with Some c -> (h + c.P.hits, l + c.P.hits + c.P.misses) | None -> (h, l))
        (0, 0) responses
    in
    float_of_int hits /. float_of_int (max 1 lookups)
  in
  (* contract 1: each batch response = an independent Mapper run, bit for bit *)
  let independent =
    List.map
      (fun (j : P.job) ->
        let program = List.assoc j.P.id (Circuits.Qecc.all ()) in
        let config =
          Qspr.Config.(
            default |> with_jobs 1 |> with_seed j.P.seed
            |> with_m (match j.P.m with Some m -> m | None -> default.m)
            |> with_budget no_budget)
        in
        let ctx =
          match Qspr.Mapper.create ~fabric ~config program with
          | Ok c -> c
          | Error e -> failwith e
        in
        let sol =
          match Qspr.Mapper.map_mvfb ~jobs:1 ctx with
          | Ok s -> s
          | Error e -> failwith (Qspr.Mapper.error_to_string e)
        in
        (j.P.id, sol.Qspr.Mapper.latency, (Analysis.Certify.of_solution ctx sol).Analysis.Certify.digest))
      jobs
  in
  List.iter2
    (fun (r : P.response) (name, latency, digest) ->
      let batch_latency, batch_digest, batch_valid = completed_or_die "batch" r in
      if not (Int64.equal (Int64.bits_of_float batch_latency) (Int64.bits_of_float latency)) then
        failwith
          (Printf.sprintf "service: %s batch latency %.9g diverged from independent run %.9g" name
             batch_latency latency);
      if not (Int64.equal batch_digest digest) then
        failwith (Printf.sprintf "service: %s certificate digest diverged from independent run" name);
      if not batch_valid then failwith (Printf.sprintf "service: %s did not certify" name))
    warm independent;
  (* contract 2: shared warm caches do strictly less search work than cold *)
  let warm_searches = searches warm and cold_searches = searches cold in
  if warm_searches >= cold_searches then
    failwith
      (Printf.sprintf "service: warm batch ran %d searches, cold services %d (want strictly fewer)"
         warm_searches cold_searches);
  (* contract 3: amortized batch is not slower than cold end to end *)
  if warm_s > cold_s *. 1.15 then
    failwith
      (Printf.sprintf "service: warm batch %.2fs slower than cold services %.2fs" warm_s cold_s);
  let cpu = List.sort compare (List.map (fun (r : P.response) -> r.P.cpu_s) warm) in
  let pct p =
    List.nth cpu (min (n - 1) (int_of_float (Float.of_int (n - 1) *. p /. 100.0 +. 0.5)))
  in
  (* full Gc.stat deltas over every batch in the group: quick_stat's
     top_heap_words alone said nothing about GC pressure — promoted words
     and major collections are what the arena refactor actually moves *)
  let gs1 = Gc.stat () in
  let promoted_words = gs1.Gc.promoted_words -. gs0.Gc.promoted_words in
  let major_collections = gs1.Gc.major_collections - gs0.Gc.major_collections in
  let heap_bytes = gs1.Gc.top_heap_words * (Sys.word_size / 8) in
  List.iter
    (fun (width, elapsed) ->
      Printf.printf "  jobs=%d  %5.2f s  %5.2f circuits/s\n" width elapsed
        (float_of_int n /. elapsed))
    widths;
  Printf.printf "  cold    %5.2f s  %5.2f circuits/s (6 single-job services)\n" cold_s
    (float_of_int n /. cold_s);
  Printf.printf
    "  searches %d warm vs %d cold, hit rate %.1f%% warm vs %.1f%% cold, cpu p50 %.0f ms p99 %.0f \
     ms\n  gc: %.1f MB promoted, %d major collections, peak heap %.1f MB\n\n"
    warm_searches cold_searches
    (100.0 *. hit_rate warm)
    (100.0 *. hit_rate cold)
    (1000.0 *. pct 50.0) (1000.0 *. pct 99.0)
    (promoted_words *. float_of_int (Sys.word_size / 8) /. 1e6)
    major_collections
    (float_of_int heap_bytes /. 1e6);
  J.Obj
    [
      ("circuits", J.Int n);
      ("placer", J.String "mvfb");
      ( "throughput",
        J.List
          (List.map
             (fun (width, elapsed) ->
               J.Obj
                 [
                   ("jobs", J.Int width);
                   ("elapsed_s", J.Float elapsed);
                   ("circuits_per_s", J.Float (float_of_int n /. elapsed));
                 ])
             widths) );
      ( "cold",
        J.Obj
          [
            ("elapsed_s", J.Float cold_s);
            ("circuits_per_s", J.Float (float_of_int n /. cold_s));
            ("searches", J.Int cold_searches);
            ("hit_rate", J.Float (hit_rate cold));
          ] );
      ("warm_searches", J.Int warm_searches);
      ("warm_hit_rate", J.Float (hit_rate warm));
      ("cpu_p50_s", J.Float (pct 50.0));
      ("cpu_p99_s", J.Float (pct 99.0));
      ("promoted_words", J.Float promoted_words);
      ("major_collections", J.Int major_collections);
      ("peak_heap_bytes", J.Int heap_bytes);
      ("bit_identical_to_independent_runs", J.Bool true);
      ("bit_identical_across_widths", J.Bool true);
    ]

(* The headline optimality-gap numbers for BENCH_pr10.json: per Table-1
   circuit the achieved MVFB latency, the certified admissible lower bound
   the solution carries ({!Estimator.Bound}) and the resulting relative gap
   — the solution-quality column next to the speed columns. *)
let gaps_summary () =
  let module J = Ion_util.Json in
  J.List
    (List.map
       (fun (circuit, latency, lb, kind, gap) ->
         J.Obj
           [
             ("circuit", J.String circuit);
             ("latency_us", J.Float latency);
             ("lower_bound_us", J.Float lb);
             ("bound_kind", J.String (Estimator.Bound.kind_to_string kind));
             ("optimality_gap", J.Float gap);
           ])
       (Qspr.Experiments.gaps_study ~m:3 ()))

(* Allocation accounting for the flat-arena memory architecture (PR 10):
   per-circuit warm forward evaluations bracketed by full [Gc.stat]
   deltas.  [Gc.minor_words] reads the allocation pointer directly, so
   the per-evaluation minor-word figure is exact on this domain;
   [Gc.stat]'s counters add words promoted to the major heap and major
   collections triggered.  OCaml exposes no GC pause times, so the pause
   column is a measured proxy: the wall-clock cost of a forced
   [Gc.minor] + [Gc.full_major] right after the workload, an upper bound
   on any single pause the workload itself could have seen.  When
   BENCH_pr8.json (emitted by the pre-arena harness) is in the working
   directory, each circuit's reduction ratio against its
   minor_words_per_run row is computed, and the two circuits bench-smoke
   guards must show the >=5x the arena refactor claims. *)
let memory_summary () =
  let module J = Ion_util.Json in
  Printf.printf "=== Memory (warm forward evaluation, Gc.stat deltas) ===\n";
  let baseline =
    if not (Sys.file_exists "BENCH_pr8.json") then None
    else
      let ic = open_in_bin "BENCH_pr8.json" in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match J.parse s with
      | Error _ -> None
      | Ok doc -> (
          match J.member "results" doc with
          | Some (J.List rows) ->
              Some
                (List.filter_map
                   (fun row ->
                     match (J.member "name" row, J.member "minor_words_per_run" row) with
                     | Some (J.String n), Some (J.Float w) -> Some (n, w)
                     | Some (J.String n), Some (J.Int w) -> Some (n, float_of_int w)
                     | _ -> None)
                   rows)
          | _ -> None)
  in
  let baseline_for name =
    (* bechamel row names mangle the commas in circuit names *)
    match baseline with
    | None -> None
    | Some rows ->
        List.assoc_opt ("qspr/circuits/" ^ String.map (function ',' -> '_' | c -> c) name) rows
  in
  let reps = 8 in
  let circuits =
    List.map
      (fun (name, p) ->
        let ctx =
          match Qspr.Mapper.create ~fabric p with Ok c -> c | Error e -> failwith e
        in
        let placement =
          Placer.Center.place (Qspr.Mapper.component ctx)
            ~num_qubits:(Qasm.Program.num_qubits p)
        in
        let eval () =
          match Qspr.Mapper.run_forward ctx placement with
          | Ok r -> ignore r.Simulator.Engine.latency
          | Error e -> failwith (Simulator.Engine.string_of_error e)
        in
        (* two warm-ups: route cache filled, arenas grown to steady size *)
        eval ();
        eval ();
        let s0 = Gc.stat () in
        let w0 = Gc.minor_words () in
        for _ = 1 to reps do
          eval ()
        done;
        let w1 = Gc.minor_words () in
        let s1 = Gc.stat () in
        let minor = (w1 -. w0) /. float_of_int reps in
        let promoted = (s1.Gc.promoted_words -. s0.Gc.promoted_words) /. float_of_int reps in
        let majors = s1.Gc.major_collections - s0.Gc.major_collections in
        let t0 = Unix.gettimeofday () in
        Gc.minor ();
        Gc.full_major ();
        let pause = Unix.gettimeofday () -. t0 in
        let base = baseline_for name in
        let ratio = match base with Some b -> Some (b /. minor) | None -> None in
        (match ratio with
        | Some r
          when r < 5.0 && (String.equal name "[[5,1,3]]" || String.equal name "[[7,1,3]]") ->
            failwith
              (Printf.sprintf
                 "memory: %s warm eval allocates %.0f minor words — only %.2fx below the \
                  pre-arena baseline (want >=5x)"
                 name minor r)
        | _ -> ());
        Printf.printf
          "  %-12s %7.0f minor words/eval  %6.0f promoted  %d major gcs  full major %.2f ms%s\n"
          name minor promoted majors (1000.0 *. pause)
          (match ratio with Some r -> Printf.sprintf "  (%.1fx vs pr8)" r | None -> "");
        J.Obj
          [
            ("circuit", J.String name);
            ("minor_words_per_eval", J.Float minor);
            ("promoted_words_per_eval", J.Float promoted);
            ("major_collections", J.Int majors);
            ("forced_full_major_s", J.Float pause);
            ( "baseline_minor_words_per_eval",
              match base with Some b -> J.Float b | None -> J.Null );
            ("minor_words_reduction_vs_pr8", match ratio with Some r -> J.Float r | None -> J.Null);
          ])
      (Circuits.Qecc.all ())
  in
  print_newline ();
  J.Obj
    [
      ( "method",
        J.String
          "Gc.minor_words + full Gc.stat deltas over 8 warm run_forward reps after 2 warm-ups" );
      ("baseline", match baseline with Some _ -> J.String "BENCH_pr8.json" | None -> J.Null);
      ("circuits", J.List circuits);
    ]

(* Machine-readable results for regression tracking: one record per bench
   with the OLS ns/run and minor words/run estimates, plus the estimator,
   fault-injection and incremental-routing subsystems' headline numbers. *)
let emit_json rows =
  let module J = Ion_util.Json in
  let doc =
    J.Obj
      [
        ("schema", J.String "qspr-bench/8");
        ( "instances",
          J.List [ J.String "monotonic_clock_ns_per_run"; J.String "minor_allocated_words_per_run" ] );
        ("estimator", estimator_summary rows);
        ("delta", delta_summary ());
        ("portfolio", portfolio_summary ());
        ("service", throughput_summary ());
        ("gaps", gaps_summary ());
        ("memory", memory_summary ());
        ("faults", faults_summary ());
        ("router", router_summary ());
        ( "results",
          J.List
            (List.map
               (fun (name, ns, words) ->
                 J.Obj
                   [ ("name", J.String name); ("ns_per_run", J.Float ns); ("minor_words_per_run", J.Float words) ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_pr10.json" in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_pr10.json (%d benches)\n" (List.length rows)

let () =
  print_tables ();
  print_priority_study ();
  print_ablation_latencies ();
  emit_json (run_benchmarks ())
