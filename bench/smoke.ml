(* Bench smoke test, wired into `dune runtest` via the bench-smoke alias: a
   tiny iteration of each bench group in main.ml, asserting the invariants
   the full harness relies on — reused-workspace routing returns exactly
   what fresh arrays return, and parallel placement search returns exactly
   the sequential latencies.  Fails loudly instead of measuring. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench-smoke: " ^ m); exit 1) fmt

let check_eq name a b = if not (Float.abs (a -. b) < 1e-9) then fail "%s: %.9g <> %.9g" name a b

let solution_latency label = function
  | Ok (s : Qspr.Mapper.solution) -> s.Qspr.Mapper.latency
  | Error e -> fail "%s: %s" label (Qspr.Mapper.error_to_string e)

let () =
  let fabric = Qspr.Experiments.fabric () in
  (* workspace group: fresh vs reused routing on a few trap pairs *)
  let comp = match Fabric.Component.extract fabric with Ok c -> c | Error e -> fail "%s" e in
  let graph = Fabric.Graph.build comp in
  let cong = Router.Congestion.create comp ~channel_capacity:2 ~junction_capacity:2 in
  let w = Router.Congestion.weight cong ~turn_cost:10.0 in
  let ntraps = Array.length (Fabric.Component.traps comp) in
  let ws = Router.Workspace.create () in
  List.iter
    (fun i ->
      let src = Fabric.Graph.trap_node graph (i * 17 mod ntraps) in
      let dst = Fabric.Graph.trap_node graph ((ntraps - 1 - (i * 5)) mod ntraps) in
      let cost label shortest =
        match shortest ~src ~dst with Some r -> r.Router.Dijkstra.cost | None -> fail "%s: no route" label
      in
      check_eq "dijkstra fresh vs reused"
        (cost "fresh" (Router.Dijkstra.shortest_path graph ~weight:w))
        (cost "reused" (Router.Dijkstra.shortest_path ~workspace:ws graph ~weight:w));
      check_eq "astar vs dijkstra reused"
        (cost "astar" (Router.Astar.shortest_path ~workspace:ws graph ~weight:w))
        (cost "reused" (Router.Dijkstra.shortest_path ~workspace:ws graph ~weight:w)))
    [ 0; 1; 2; 3 ];
  (* parallel group: serial and pooled searches agree latency-for-latency *)
  let p = List.assoc "[[5,1,3]]" (Circuits.Qecc.all ()) in
  let ctx = match Qspr.Mapper.create ~fabric p with Ok c -> c | Error e -> fail "%s" e in
  check_eq "monte carlo jobs1 vs jobs2"
    (solution_latency "mc jobs1" (Qspr.Mapper.map_monte_carlo ~runs:4 ~jobs:1 ctx))
    (solution_latency "mc jobs2" (Qspr.Mapper.map_monte_carlo ~runs:4 ~jobs:2 ctx));
  check_eq "mvfb jobs1 vs jobs2"
    (solution_latency "mvfb jobs1" (Qspr.Mapper.map_mvfb ~m:2 ~jobs:1 ctx))
    (solution_latency "mvfb jobs2" (Qspr.Mapper.map_mvfb ~m:2 ~jobs:2 ctx));
  (* estimator group: pure estimates, pooled fan-out bit-identity, and the
     pre-screened search contract *)
  let model = Qspr.Mapper.estimator_model ctx in
  let nq = Qasm.Program.num_qubits p in
  let pool =
    Array.init 8 (fun i ->
        Placer.Center.place_permuted (Ion_util.Rng.derive 7 ~index:i) (Qspr.Mapper.component ctx)
          ~num_qubits:nq)
  in
  let seq = Array.map (Estimator.Model.estimate model) pool in
  let fanned =
    Ion_util.Domain_pool.with_pool ~jobs:2 (fun dp ->
        Ion_util.Domain_pool.map dp (Estimator.Model.estimate model) pool)
  in
  Array.iteri (fun i a -> check_eq "estimate pooled vs sequential" a fanned.(i)) seq;
  Array.iteri (fun i a -> check_eq "estimate repeated" a (Estimator.Model.estimate model pool.(i))) seq;
  let plain =
    match Qspr.Mapper.map_monte_carlo ~runs:8 ~prescreen_k:0 ctx with
    | Ok s -> s
    | Error e -> fail "mc plain: %s" (Qspr.Mapper.error_to_string e)
  in
  let pre1 =
    match Qspr.Mapper.map_monte_carlo ~runs:8 ~jobs:1 ~prescreen_k:3 ctx with
    | Ok s -> s
    | Error e -> fail "mc prescreen jobs1: %s" (Qspr.Mapper.error_to_string e)
  in
  let pre2 =
    match Qspr.Mapper.map_monte_carlo ~runs:8 ~jobs:2 ~prescreen_k:3 ctx with
    | Ok s -> s
    | Error e -> fail "mc prescreen jobs2: %s" (Qspr.Mapper.error_to_string e)
  in
  check_eq "prescreen jobs1 vs jobs2" pre1.Qspr.Mapper.latency pre2.Qspr.Mapper.latency;
  if pre1.Qspr.Mapper.initial_placement <> pre2.Qspr.Mapper.initial_placement then
    fail "prescreen jobs1 vs jobs2: placements differ";
  if pre1.Qspr.Mapper.engine_evals > 3 then
    fail "prescreen routed %d > k=3 candidates" pre1.Qspr.Mapper.engine_evals;
  if not (List.mem pre1.Qspr.Mapper.latency plain.Qspr.Mapper.run_latencies) then
    fail "prescreened winner %.1f not among the plain run latencies" pre1.Qspr.Mapper.latency;
  (* analysis group: every benchmarked solution must survive independent
     replay, and the pooled search must stay bit-deterministic *)
  let cert = Analysis.Certify.of_solution ctx pre1 in
  if not cert.Analysis.Certify.valid then
    fail "prescreened solution fails certification: %s"
      (Format.asprintf "%a" Analysis.Certify.pp cert);
  (match
     Analysis.Determinism.check ~label:"mc runs=4" ~jobs:2 (fun ~jobs ->
         Qspr.Mapper.map_monte_carlo ~runs:4 ~jobs ctx)
   with
  | [] -> ()
  | f :: _ ->
      fail "parallel determinism violated: %s" (Format.asprintf "%a" Analysis.Finding.pp f));
  (* bound group: every solution carries an admissible certified bound at or
     below its achieved latency, bit-identical across job counts and equal
     to the recomputation, and the auditor finds nothing wrong with an
     honest solution *)
  if pre1.Qspr.Mapper.lower_bound_us > pre1.Qspr.Mapper.latency +. 1e-6 then
    fail "certified bound %.1f us exceeds the achieved latency %.1f us"
      pre1.Qspr.Mapper.lower_bound_us pre1.Qspr.Mapper.latency;
  if
    Int64.bits_of_float pre1.Qspr.Mapper.lower_bound_us
    <> Int64.bits_of_float pre2.Qspr.Mapper.lower_bound_us
  then fail "certified bound differs between jobs=1 and jobs=2";
  let recomputed =
    Qspr.Mapper.certified_bound ctx ~initial_placement:pre1.Qspr.Mapper.initial_placement
  in
  if
    Int64.bits_of_float recomputed.Estimator.Bound.lower_bound_us
    <> Int64.bits_of_float pre1.Qspr.Mapper.lower_bound_us
  then fail "solution's certified bound is not the recomputation";
  let audit_report = Analysis.Bound.audit ctx pre1 in
  if Analysis.Finding.count Analysis.Finding.Error audit_report.Analysis.Bound.findings > 0 then
    fail "bound auditor flagged an honest solution";
  (* faults group: a survivability campaign over a degraded fabric is
     bit-identical at any job count *)
  let campaign jobs =
    match
      Fault.campaign ~jobs
        ~config:Qspr.Config.(default |> with_m 2)
        ~seed:11 ~levels:[ 0; 1; 2 ] ~trials:3
        ~fabric:(Fabric.Layout.linear ~traps:6 ())
        p
    with
    | Ok r -> Ion_util.Json.to_string (Fault.to_json r)
    | Error e -> fail "fault campaign (jobs=%d): %s" jobs e
  in
  if not (String.equal (campaign 1) (campaign 2)) then
    fail "fault campaign: jobs=1 vs jobs=2 reports differ";
  (* router group: the engine's route cache must change counters only — a
     warm cache serves strictly fewer live searches yet returns the same
     bits — and the MVFB search must be bit-identical with the incremental
     stack on or off, with the incremental winner certifying *)
  let placement = Placer.Center.place (Qspr.Mapper.component ctx) ~num_qubits:nq in
  let cfg = Qspr.Mapper.config ctx in
  let engine route_cache =
    match
      Simulator.Engine.run ~graph:(Qspr.Mapper.graph ctx) ~timing:cfg.Qspr.Config.timing
        ~policy:cfg.Qspr.Config.qspr_policy ~dag:(Qspr.Mapper.dag ctx)
        ~priorities:(Qspr.Mapper.qspr_priorities ctx) ~placement ?route_cache ()
    with
    | Ok r -> r
    | Error e -> fail "engine: %s" (Simulator.Engine.string_of_error e)
  in
  let r0 = engine None in
  let cache = Router.Route_cache.create () in
  let r1 = engine (Some cache) in
  let r2 = engine (Some cache) in
  check_eq "engine no-cache vs cold-cache latency" r0.Simulator.Engine.latency
    r1.Simulator.Engine.latency;
  check_eq "engine cold vs warm cache latency" r1.Simulator.Engine.latency
    r2.Simulator.Engine.latency;
  if r0.Simulator.Engine.trace <> r2.Simulator.Engine.trace then
    fail "warm route cache changed the trace";
  if r1.Simulator.Engine.route_searches <> r0.Simulator.Engine.route_searches then
    fail "cold route cache changed the search count (%d vs %d)"
      r1.Simulator.Engine.route_searches r0.Simulator.Engine.route_searches;
  if r2.Simulator.Engine.route_searches >= r1.Simulator.Engine.route_searches then
    fail "warm route cache did not reduce searches (%d vs %d)"
      r2.Simulator.Engine.route_searches r1.Simulator.Engine.route_searches;
  if r2.Simulator.Engine.route_cache_hits = 0 then fail "warm route cache never hit";
  let mvfb incremental =
    let config = Qspr.Config.(default |> with_incremental incremental) in
    let ctx =
      match Qspr.Mapper.create ~fabric ~config p with Ok c -> c | Error e -> fail "%s" e
    in
    let sol =
      match Qspr.Mapper.map_mvfb ~m:2 ctx with
      | Ok s -> s
      | Error e -> fail "mvfb incremental=%b: %s" incremental (Qspr.Mapper.error_to_string e)
    in
    (ctx, sol)
  in
  let _, on = mvfb true in
  let off_ctx, off = mvfb false in
  check_eq "mvfb incremental on vs off" on.Qspr.Mapper.latency off.Qspr.Mapper.latency;
  if on.Qspr.Mapper.trace <> off.Qspr.Mapper.trace then
    fail "mvfb incremental on vs off: traces differ";
  let cert_off = Analysis.Certify.of_solution off_ctx off in
  if not cert_off.Analysis.Certify.valid then
    fail "legacy-routing solution fails certification: %s"
      (Format.asprintf "%a" Analysis.Certify.pp cert_off);
  (* delta group: the incremental estimator's transactional contract — undo
     restores the latency bitwise, a committed chain of swaps agrees with a
     from-scratch evaluation, and resync reports zero drift *)
  let delta = Estimator.Delta.create model placement in
  let lat0 = Estimator.Delta.latency delta in
  ignore (Estimator.Delta.apply_swap delta 0 3);
  Estimator.Delta.undo delta;
  if Estimator.Delta.latency delta <> lat0 then fail "delta undo did not restore the latency";
  for k = 0 to 19 do
    ignore (Estimator.Delta.apply_swap delta (k mod nq) ((k + 2) mod nq));
    Estimator.Delta.commit delta
  done;
  let scratch = Estimator.Delta.eval model (Estimator.Delta.placement delta) in
  if Estimator.Delta.latency delta <> scratch then
    fail "delta swap chain diverged from a from-scratch evaluation (%.9g vs %.9g)"
      (Estimator.Delta.latency delta) scratch;
  if Estimator.Delta.resync delta <> 0.0 then fail "delta resync reported drift";
  (* portfolio group: the five-strategy race is bit-identical across job
     counts and never loses to the classic anneal at a matched budget *)
  let race jobs =
    match Qspr.Mapper.map_portfolio ~m:2 ~sa_moves:1_000 ~jobs ctx with
    | Ok s -> s
    | Error e -> fail "portfolio jobs=%d: %s" jobs (Qspr.Mapper.error_to_string e)
  in
  let race1 = race 1 and race2 = race 2 in
  check_eq "portfolio jobs1 vs jobs2" race1.Qspr.Mapper.latency race2.Qspr.Mapper.latency;
  if race1.Qspr.Mapper.initial_placement <> race2.Qspr.Mapper.initial_placement then
    fail "portfolio jobs1 vs jobs2: placements differ";
  let anneal = solution_latency "sa" (Qspr.Mapper.map_annealing ~evaluations:2 ctx) in
  if race1.Qspr.Mapper.latency > anneal then
    fail "portfolio %.1f us lost to the classic anneal %.1f us" race1.Qspr.Mapper.latency anneal;
  (* service group: the throughput bench's contracts at smoke scale — a
     batch is byte-identical at any width and to sequential submission, the
     warm second job does strictly fewer searches than the cold first, and
     the batch result matches an independent Mapper run bit for bit *)
  let module P = Service.Protocol in
  let module S = Service.Scheduler in
  let sjobs =
    [
      P.make_job ~seed:7 ~placer:"mvfb" ~m:2 ~id:"cold" (P.Builtin "[[5,1,3]]");
      P.make_job ~seed:7 ~placer:"mvfb" ~m:2 ~id:"warm" (P.Builtin "[[5,1,3]]");
    ]
  in
  let det r = P.response_to_line ~deterministic:true r in
  let batch width = S.run_batch (S.create ~limits:{ S.default_limits with S.jobs = width } ()) sjobs in
  let b1 = batch 1 and b2 = batch 2 in
  let seq =
    let t = S.create () in
    List.map (S.submit t) sjobs
  in
  List.iter2
    (fun a b ->
      if not (String.equal (det a) (det b)) then fail "service: jobs=1 vs jobs=2 responses differ")
    b1 b2;
  List.iter2
    (fun a b ->
      if not (String.equal (det a) (det b)) then
        fail "service: batch vs sequential responses differ")
    b1 seq;
  (match (List.map (fun (r : P.response) -> r.P.cache) seq, List.map (fun (r : P.response) -> r.P.verdict) seq) with
  | ( [ Some c0; Some c1 ],
      [
        P.Completed { latency_us = lat0; certificate_digest = dig0; _ };
        P.Completed { certificate_digest = dig1; _ };
      ] ) ->
      if c1.P.misses >= c0.P.misses then
        fail "service: warm job ran %d searches, cold ran %d (want strictly fewer)" c1.P.misses
          c0.P.misses;
      if c1.P.shared_hits = 0 then fail "service: warm job never hit the shared snapshot";
      if not (Int64.equal dig0 dig1) then
        fail "service: warm job's certificate digest diverged from the cold job";
      let sol =
        let config =
          Qspr.Config.(
            default |> with_jobs 1 |> with_seed 7 |> with_m 2
            |> with_budget no_budget)
        in
        let sctx =
          match Qspr.Mapper.create ~fabric ~config p with Ok c -> c | Error e -> fail "%s" e
        in
        solution_latency "service reference" (Qspr.Mapper.map_mvfb ~jobs:1 sctx)
      in
      check_eq "service batch vs independent mapper" lat0 sol
  | _ -> fail "service: expected two completed responses with cache counters");
  (* memory group: the flat-arena warm path must stay allocation-lean.
     After two warm-up evaluations (route cache filled, arenas sized), the
     per-evaluation minor-word cost of a forward schedule-and-route on the
     two small Table-1 circuits is bounded by a fixed ceiling — about 2x
     the ~10.5k-word steady state measured with the packed-path/arena
     engine (the pre-arena engine allocated ~69-73k words per evaluation).
     A regression that reintroduces per-edge or per-event list allocation
     on the engine's hot path trips this immediately, long before it shows
     in wall-clock noise.  Domain-local accounting: jobs=1 runs inline, so
     Gc.minor_words sees exactly this domain's allocations. *)
  let warm_minor_words name =
    let wp = List.assoc name (Circuits.Qecc.all ()) in
    let wctx = match Qspr.Mapper.create ~fabric wp with Ok c -> c | Error e -> fail "%s" e in
    let wplace =
      Placer.Center.place (Qspr.Mapper.component wctx)
        ~num_qubits:(Qasm.Program.num_qubits wp)
    in
    let eval () =
      match Qspr.Mapper.run_forward wctx wplace with
      | Ok r -> ignore r.Simulator.Engine.latency
      | Error e -> fail "memory %s: %s" name (Simulator.Engine.string_of_error e)
    in
    eval ();
    eval ();
    let reps = 8 in
    (* Gc.minor_words reads the allocation pointer directly — precise on
       this domain, unlike quick_stat's per-collection counters *)
    let w0 = Gc.minor_words () in
    for _ = 1 to reps do
      eval ()
    done;
    (Gc.minor_words () -. w0) /. float_of_int reps
  in
  List.iter
    (fun (name, ceiling) ->
      let words = warm_minor_words name in
      Printf.printf "bench-smoke: %s warm eval %.0f minor words (ceiling %.0f)\n" name words
        ceiling;
      if words > ceiling then
        fail "%s: warm evaluation allocates %.0f minor words (ceiling %.0f) — arena regression"
          name words ceiling)
    [ ("[[5,1,3]]", 22_000.0); ("[[7,1,3]]", 22_000.0) ];
  print_endline
    "bench-smoke: OK (workspace routing exact, parallel search exact, estimator pure, \
     prescreen consistent, winner certified, certified bound admissible and deterministic, \
     fault campaign deterministic, route cache \
     bit-identical with fewer searches, incremental on/off identical, delta transactions \
     exact, portfolio deterministic and never worse than the anneal, service batch \
     deterministic with shared warm caches)"
