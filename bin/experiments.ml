(* Experiment driver: regenerates every table and figure of the paper's
   evaluation (Section V).

   Usage:  experiments [table1|table2|sensitivity|fig23|fig4|fig5|all] [--fast]

   --fast shrinks the MVFB seed counts (m) so a full sweep completes in
   seconds; the default reproduces the paper's protocol (m = 25 / 100). *)

let fast = ref false
let json_path = ref None
let certify = ref false

let m_small () = if !fast then 3 else 25
let m_large () = if !fast then 6 else 100

let line title =
  Printf.printf "\n==== %s ====\n\n%!" title

let write_json name doc =
  match !json_path with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".json") in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Ion_util.Json.to_string doc));
      Printf.printf "\n[json written to %s]\n" path

(* --certify: re-map every Table-1 circuit and replay each trace through the
   independent certifier — a mapper bug that fabricates latencies fails the
   whole experiment run instead of silently entering the table. *)
let certify_table1 () =
  line "Trace certificates (MVFB, Table 1 circuits)";
  let fabric = Fabric.Layout.quale_45x85 () in
  let all_ok = ref true in
  List.iter
    (fun (name, program) ->
      let status =
        match Qspr.Mapper.create ~fabric ~config:(Qspr.Config.with_m (m_small ()) Qspr.Config.default) program with
        | Error e -> Error e
        | Ok ctx -> (
            match Qspr.Mapper.map_mvfb ctx with
            | Error e -> Error (Qspr.Mapper.error_to_string e)
            | Ok sol -> Ok (Analysis.Certify.of_solution ctx sol))
      in
      match status with
      | Error e ->
          all_ok := false;
          Printf.printf "  %-12s mapping failed: %s\n" name e
      | Ok cert ->
          if not cert.Analysis.Certify.valid then all_ok := false;
          Printf.printf "  %-12s %s\n" name (Format.asprintf "%a" Analysis.Certify.pp cert))
    (Circuits.Qecc.all ());
  if not !all_ok then begin
    Printf.eprintf "certification failed: at least one Table-1 trace does not replay\n";
    exit 1
  end

let run_table1 () =
  line "Table 1: MVFB vs Monte-Carlo (equal placement-run budget)";
  let rows = Qspr.Experiments.table1 ~m_small:(m_small ()) ~m_large:(m_large ()) () in
  print_string (Qspr.Report.render_table1 rows);
  Printf.printf "\nCSV:\n%s" (Qspr.Report.csv_table1 rows);
  write_json "table1" (Qspr.Export.table1 rows);
  if !certify then certify_table1 ()

let run_table2 () =
  line "Table 2: Baseline vs QUALE vs QSPR";
  let rows = Qspr.Experiments.table2 ~m:(m_large ()) () in
  print_string (Qspr.Report.render_table2 rows);
  line "Table 2, measured vs paper";
  print_string (Qspr.Experiments.table2_with_paper rows);
  Printf.printf "\nCSV:\n%s" (Qspr.Report.csv_table2 rows);
  write_json "table2" (Qspr.Export.table2 rows)

let run_sensitivity () =
  line "Sensitivity to m (Section IV.A), circuit [[9,1,3]]";
  let ms = if !fast then [ 1; 2; 5 ] else [ 1; 5; 10; 25; 50; 100 ] in
  let rows = Qspr.Experiments.sensitivity ~ms () in
  let header = [ "m"; "MVFB latency (us)"; "MVFB runs"; "MC latency (us, equal runs)" ] in
  let cells =
    List.map
      (fun (m, mvfb, runs, mc) ->
        [ string_of_int m; Qspr.Report.us mvfb; string_of_int runs; Qspr.Report.us mc ])
      rows
  in
  print_string (Ion_util.Ascii_table.render_simple ~header ~rows:cells);
  print_newline ();
  print_string
    (Ion_util.Plot.render
       [
         {
           Ion_util.Plot.label = "MVFB";
           points = List.map (fun (m, l, _, _) -> (float_of_int m, l)) rows;
           glyph = 'v';
         };
         {
           Ion_util.Plot.label = "MC (equal runs)";
           points = List.map (fun (m, _, _, l) -> (float_of_int m, l)) rows;
           glyph = 'c';
         };
       ])

let run_congestion () =
  line "Congestion heatmaps ([[19,1,7]]): QSPR (capacity 2) vs QUALE (capacity 1)";
  let qspr, quale = Qspr.Experiments.congestion_maps () in
  Printf.printf "QSPR mapping:\n%s\nQUALE mapping:\n%s\n" qspr quale

let run_scaling () =
  line "Scaling on random Clifford workloads (MVFB m=3)";
  Printf.printf "  %8s %8s %14s %10s\n" "qubits" "gates" "latency (us)" "cpu (s)";
  List.iter
    (fun (nq, gates, latency, cpu) -> Printf.printf "  %8d %8d %14.0f %10.2f\n" nq gates latency cpu)
    (Qspr.Experiments.scaling_study ())

let run_placers () =
  line "Placer comparison ([[9,1,3]], equal evaluation budgets)";
  Printf.printf "  %-24s %14s %14s\n" "placer" "latency (us)" "evaluations";
  List.iter
    (fun (name, latency, evals) -> Printf.printf "  %-24s %14.0f %14d\n" name latency evals)
    (Qspr.Experiments.placer_comparison ())

let run_fabric_study () =
  line "Fabric-geometry sensitivity ([[9,1,3]], MVFB m=5)";
  List.iter
    (fun (name, latency) -> Printf.printf "  %-42s %8.1f us\n" name latency)
    (Qspr.Experiments.fabric_study ())

let run_optimality () =
  line "Optimality gap ([[5,1,3]], 6 candidate traps)";
  List.iter
    (fun (name, latency) -> Printf.printf "  %-38s %8.1f us\n" name latency)
    (Qspr.Experiments.optimality_study ())

let run_noise () =
  line "Noise study: estimated success probability, QSPR vs QUALE mappings";
  Printf.printf "  %-12s %14s %14s %18s\n" "circuit" "P(ok) QSPR" "P(ok) QUALE" "error reduction";
  List.iter
    (fun (name, p_qspr, p_quale) ->
      let reduction = (p_qspr -. p_quale) /. (1.0 -. p_quale) *. 100.0 in
      Printf.printf "  %-12s %14.4f %14.4f %16.1f%%\n" name p_qspr p_quale reduction)
    (Qspr.Experiments.noise_study ~m:(m_small ()) ())

let run_empirical () =
  line "Empirical noise validation (Monte-Carlo over the mapped trace, [[9,1,3]])";
  Printf.printf "  %-8s %14s %18s %18s\n" "mapping" "latency (us)" "P(ok) analytic" "P(ok) measured";
  List.iter
    (fun (label, latency, analytic, measured) ->
      Printf.printf "  %-8s %14.0f %18.3f %18.3f\n" label latency analytic measured)
    (Qspr.Experiments.empirical_noise ~trials:(if !fast then 100 else 300) ())

let run_noise_sweep () =
  line "Failure rate vs transport-noise scale (Monte-Carlo, [[9,1,3]])";
  let rows = Qspr.Experiments.noise_sweep ~trials:(if !fast then 60 else 200) () in
  Printf.printf "  %8s %16s %16s\n" "scale" "QSPR failure" "QUALE failure";
  List.iter (fun (s, fq, fu) -> Printf.printf "  %8.1f %16.3f %16.3f\n" s fq fu) rows;
  print_newline ();
  print_string
    (Ion_util.Plot.render
       [
         { Ion_util.Plot.label = "QSPR"; points = List.map (fun (s, fq, _) -> (s, fq)) rows; glyph = 'q' };
         { Ion_util.Plot.label = "QUALE"; points = List.map (fun (s, _, fu) -> (s, fu)) rows; glyph = 'u' };
       ])

let run_objective () =
  line "Objective alignment: latency-optimal vs error-optimal placement ([[9,1,3]])";
  Printf.printf "  %-26s %14s %16s\n" "objective" "latency (us)" "error prob";
  List.iter
    (fun (name, latency, error) -> Printf.printf "  %-26s %14.0f %16.4f\n" name latency error)
    (Qspr.Experiments.objective_study ~samples:(if !fast then 12 else 40) ())

let run_wave () =
  line "Wave (phase-synchronous PathFinder) mapping vs the event-driven engine";
  Printf.printf "  %-12s %12s %12s %16s %14s\n" "circuit" "wave (us)" "QSPR (us)" "paper QUALE" "overuses";
  List.iter
    (fun (name, wave, qspr, over) ->
      let pq =
        match Circuits.Qecc.paper_quale_latency_us name with Some v -> Printf.sprintf "%.0f" v | None -> "?"
      in
      Printf.printf "  %-12s %12.0f %12.0f %16s %14d\n" name wave qspr pq over)
    (Qspr.Experiments.wave_study ~m:(if !fast then 2 else 5) ())

let run_basis () =
  line "Gate-basis cost: native controlled-Paulis vs CX-only machines";
  Printf.printf "  %-12s %14s %16s %10s\n" "circuit" "native (us)" "cx-basis (us)" "overhead";
  List.iter
    (fun (name, native, cx) ->
      Printf.printf "  %-12s %14.0f %16.0f %9.1f%%\n" name native cx ((cx -. native) /. native *. 100.0))
    (Qspr.Experiments.basis_study ~m:(if !fast then 2 else 5) ())

let run_eq1 () =
  line "Eq. 1 latency decomposition (T_gate + T_routing + T_congestion)";
  Printf.printf "  %-12s %-8s %12s %12s %14s\n" "circuit" "mapper" "T_gate" "T_routing" "T_congestion";
  List.iter
    (fun (name, qspr, quale) ->
      let p (t : Simulator.Breakdown.totals) tag =
        Printf.printf "  %-12s %-8s %10.0fus %10.0fus %12.0fus\n" name tag
          t.Simulator.Breakdown.gate_us t.Simulator.Breakdown.routing_us
          t.Simulator.Breakdown.congestion_us
      in
      p qspr "QSPR";
      p quale "QUALE")
    (Qspr.Experiments.eq1_breakdown ~m:(if !fast then 2 else 5) ())

let run_estimator () =
  line "Estimator accuracy: fast model vs measured engine (center placements)";
  let rows = Qspr.Experiments.estimator_accuracy () in
  Printf.printf "  %-12s %14s %14s %12s\n" "circuit" "estimated" "measured" "rel error";
  List.iter
    (fun (name, est, meas, rel) ->
      Printf.printf "  %-12s %12.1fus %12.1fus %+11.1f%%\n" name est meas (100.0 *. rel))
    rows;
  let mean_abs =
    List.fold_left (fun acc (_, _, _, rel) -> acc +. Float.abs rel) 0.0 rows
    /. float_of_int (List.length rows)
  in
  Printf.printf "  mean absolute relative error: %.1f%%\n" (100.0 *. mean_abs)

let run_prescreen () =
  line "Pre-screened vs exhaustive Monte-Carlo (runs=25, prescreen_k=5)";
  Printf.printf "  %-12s %16s %18s %8s %8s\n" "circuit" "plain (us/evals)" "prescreened" "speedup" "delta";
  List.iter
    (fun (name, _) ->
      let s = Qspr.Experiments.prescreen_study ~circuit:name () in
      Printf.printf "  %-12s %10.0f / %-3d %12.0f / %-3d %7.1fx %+7.2f%%\n" name
        s.Qspr.Experiments.plain_latency s.Qspr.Experiments.plain_evals
        s.Qspr.Experiments.prescreened_latency s.Qspr.Experiments.prescreened_evals
        (float_of_int s.Qspr.Experiments.plain_evals /. float_of_int s.Qspr.Experiments.prescreened_evals)
        (100.0
        *. (s.Qspr.Experiments.prescreened_latency -. s.Qspr.Experiments.plain_latency)
        /. s.Qspr.Experiments.plain_latency))
    (Circuits.Qecc.all ())

let run_priorities () =
  line "Scheduling-priority ablation (Section III), circuit [[9,1,3]]";
  List.iter
    (fun (name, latency) -> Printf.printf "  %-26s %8.1f us\n" name latency)
    (Qspr.Experiments.priority_study ())

let run_faults () =
  line "Fault-injection survivability ([[5,1,3]], retry cascade on degraded fabrics)";
  let levels = if !fast then [ 0; 2; 6 ] else [ 0; 2; 6; 12; 24 ] in
  let trials = if !fast then 2 else 5 in
  let config = Qspr.Config.(default |> with_m (m_small ())) in
  match
    Fault.campaign ~config ~seed:2012 ~levels ~trials ~fabric:(Fabric.Layout.quale_45x85 ())
      (Circuits.Qecc.c513 ())
  with
  | Error e ->
      Printf.eprintf "fault campaign failed: %s\n" e;
      exit 1
  | Ok report ->
      Format.printf "@[<v>%a@]@." Fault.pp report;
      write_json "faults" (Fault.to_json report)

let run_gaps () =
  line "Optimality gaps: achieved latency vs certified lower bound (MVFB, Table-1 suite)";
  let rows = Qspr.Experiments.gaps_study ~m:(if !fast then 2 else m_small ()) () in
  Printf.printf "%-12s %12s %12s %15s %8s\n" "circuit" "latency (us)" "bound (us)" "kind" "gap";
  List.iter
    (fun (c, lat, lb, kind, gap) ->
      Printf.printf "%-12s %12.1f %12.1f %15s %7.1f%%\n" c lat lb
        (Estimator.Bound.kind_to_string kind)
        (100.0 *. gap))
    rows;
  write_json "gaps"
    (Ion_util.Json.List
       (List.map
          (fun (c, lat, lb, kind, gap) ->
            Ion_util.Json.Obj
              [
                ("circuit", Ion_util.Json.String c);
                ("latency_us", Ion_util.Json.Float lat);
                ("lower_bound_us", Ion_util.Json.Float lb);
                ("bound_kind", Ion_util.Json.String (Estimator.Bound.kind_to_string kind));
                ("optimality_gap", Ion_util.Json.Float gap);
              ])
          rows))

let run_fig23 () =
  line "Figures 2-3";
  print_string (Qspr.Experiments.fig23 ())

let run_fig4 () =
  line "Figure 4";
  print_string (Qspr.Experiments.fig4 ())

let run_fig5 () =
  line "Figure 5";
  print_string (Qspr.Experiments.fig5 ())

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let commands, flags = List.partition (fun a -> not (String.length a > 2 && String.sub a 0 2 = "--")) args in
  List.iter
    (fun f ->
      if f = "--fast" then fast := true
      else if f = "--certify" then certify := true
      else if String.length f > 7 && String.sub f 0 7 = "--json=" then
        json_path := Some (String.sub f 7 (String.length f - 7))
      else failwith ("unknown flag " ^ f))
    flags;
  let known =
    [
      ("table1", run_table1);
      ("table2", run_table2);
      ("sensitivity", run_sensitivity);
      ("priorities", run_priorities);
      ("noise", run_noise);
      ("empirical", run_empirical);
      ("noise-sweep", run_noise_sweep);
      ("eq1", run_eq1);
      ("basis", run_basis);
      ("wave", run_wave);
      ("objective", run_objective);
      ("optimality", run_optimality);
      ("fabric-study", run_fabric_study);
      ("placers", run_placers);
      ("estimator", run_estimator);
      ("prescreen", run_prescreen);
      ("congestion", run_congestion);
      ("faults", run_faults);
      ("scaling", run_scaling);
      ("gaps", run_gaps);
      ("fig23", run_fig23);
      ("fig4", run_fig4);
      ("fig5", run_fig5);
    ]
  in
  let run name =
    match List.assoc_opt name known with
    | Some f -> f ()
    | None ->
        Printf.eprintf "unknown experiment %S; available: %s all\n" name
          (String.concat " " (List.map fst known));
        exit 1
  in
  match commands with
  | [] | [ "all" ] -> List.iter (fun (_, f) -> f ()) known
  | names -> List.iter run names
