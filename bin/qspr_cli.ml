(* qspr — command-line front end of the mapper.

   Subcommands:
     map       map a QASM file (or builtin benchmark) onto an ion-trap fabric
     serve     mapping-as-a-service: line-delimited JSON jobs in, results out
     lint      static-analysis report over a circuit and/or fabric
     fabric    render a fabric and its component statistics
     circuits  list or print the builtin QECC benchmark circuits *)

open Cmdliner

let load_fabric = function
  | None -> Ok (Fabric.Layout.quale_45x85 ())
  | Some path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error e -> Error e
      | src -> Fabric.Layout.parse src)

let load_program ~circuit ~qasm ~openqasm =
  match (circuit, qasm, openqasm) with
  | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
      Error "give exactly one of --circuit, --qasm or --openqasm"
  | None, None, None -> Error "give --circuit NAME (see `qspr circuits`), --qasm FILE or --openqasm FILE"
  | Some name, None, None -> (
      match List.assoc_opt name (Circuits.Qecc.all ()) with
      | Some p -> Ok p
      | None ->
          Error
            (Printf.sprintf "unknown circuit %s; known: %s" name
               (String.concat ", " (List.map fst (Circuits.Qecc.all ())))))
  | None, Some path, None -> Qasm.Parser.parse_file path
  | None, None, Some path -> Qasm.Openqasm.parse_file path

(* Same resolution, but errors keep their file:line:col structure so lint
   and audit findings can point at the offending token. *)
let load_program_located ~circuit ~qasm ~openqasm =
  match (circuit, qasm, openqasm) with
  | None, Some path, None -> (
      match Qasm.Parser.parse_file_located path with
      | exception Sys_error e -> Error (Qasm.Parser.error_of_string e)
      | r -> r)
  | _ ->
      Result.map_error Qasm.Parser.error_of_string (load_program ~circuit ~qasm ~openqasm)

(* ------------------------------------------------------------------ map *)

(* Surface fabric lint on every mapping run (the findings are cheap and the
   failure modes they catch — disconnected islands, starved capacity — waste
   a whole placement search otherwise): warnings and hints go to stderr,
   errors abort before any search runs. *)
let gate_on_fabric_lint ~program fabric =
  let findings = Fabric.Lint.check ~num_qubits:(Qasm.Program.num_qubits program) fabric in
  List.iter (fun f -> Format.eprintf "%a@." Analysis.Finding.pp f) findings;
  if Analysis.Finding.is_clean findings then Ok ()
  else Error "fabric fails lint (errors above; `qspr lint` shows the full report)"

let do_map circuit qasm openqasm fabric_path pmd_path placer m sa_moves seed prescreen_k
    budget_s budget_evals incremental show_trace validate certify json_out =
  let ( let* ) = Result.bind in
  let result =
    let* program = load_program ~circuit ~qasm ~openqasm in
    let* fabric, base_config =
      match pmd_path with
      | Some path ->
          if fabric_path <> None then Error "give --fabric or --pmd, not both"
          else
            let* pmd = Qspr.Pmd.parse_file path in
            Ok (pmd.Qspr.Pmd.layout, Qspr.Pmd.config pmd)
      | None ->
          let* fabric = load_fabric fabric_path in
          Ok (fabric, Qspr.Config.default)
    in
    let* () = gate_on_fabric_lint ~program fabric in
    (* explicit flags win; otherwise keep the config's (env-derived) budget *)
    let base_budget = base_config.Qspr.Config.budget in
    let budget =
      {
        Qspr.Config.wall_s =
          (match budget_s with Some _ -> budget_s | None -> base_budget.Qspr.Config.wall_s);
        max_evals =
          (match budget_evals with
          | Some _ -> budget_evals
          | None -> base_budget.Qspr.Config.max_evals);
        deadline = base_budget.Qspr.Config.deadline;
      }
    in
    let config =
      Qspr.Config.(
        base_config |> with_m m |> with_seed seed |> with_budget budget
        |> (match sa_moves with Some n -> with_sa_moves n | None -> Fun.id)
        |> match incremental with Some b -> with_incremental b | None -> Fun.id)
    in
    let* ctx = Qspr.Mapper.create ~fabric ~config program in
    let* sol =
      Result.map_error Qspr.Mapper.error_to_string
        (match placer with
        | "mvfb" -> Qspr.Mapper.map_mvfb ?prescreen_k ctx
        | "mc" -> Qspr.Mapper.map_monte_carlo ~runs:m ?prescreen_k ctx
        | "sa" -> Qspr.Mapper.map_annealing ~evaluations:m ?prescreen_k ctx
        | "portfolio" -> Qspr.Mapper.map_portfolio ~m ctx
        | "center" -> Qspr.Mapper.map_center ctx
        | "quale" -> Qspr.Quale_mode.map ctx
        | "robust" -> Qspr.Mapper.map_robust ctx
        | other ->
            Error
              (Qspr.Mapper.Invalid
                 (Printf.sprintf "unknown placer %s (mvfb|mc|sa|portfolio|center|quale|robust)"
                    other)))
    in
    let baseline = Qspr.Mapper.ideal_latency ctx in
    Printf.printf "circuit           : %s (%d qubits, %d gates)\n" program.Qasm.Program.name
      (Qasm.Program.num_qubits program) (Qasm.Program.gate_count program);
    Printf.printf "placer            : %s\n" placer;
    Printf.printf "ideal baseline    : %.1f us\n" baseline;
    Printf.printf "execution latency : %.1f us (%.1f us over baseline)\n" sol.Qspr.Mapper.latency
      (sol.Qspr.Mapper.latency -. baseline);
    Printf.printf "placement runs    : %d (%d engine evals, %.0f ms CPU)\n"
      sol.Qspr.Mapper.placement_runs sol.Qspr.Mapper.engine_evals
      (sol.Qspr.Mapper.cpu_time_s *. 1000.0);
    Printf.printf "winning direction : %s\n"
      (match sol.Qspr.Mapper.direction with
      | Placer.Mvfb.Forward -> "forward"
      | Placer.Mvfb.Backward -> "backward (trace reversed)");
    Printf.printf "trace             : %d moves, %d turns, %d gates\n"
      (Simulator.Trace.move_count sol.Qspr.Mapper.trace)
      (Simulator.Trace.turn_count sol.Qspr.Mapper.trace)
      (Simulator.Trace.gate_count sol.Qspr.Mapper.trace);
    if sol.Qspr.Mapper.degraded then
      Printf.printf "degraded          : yes (budget cut the search or earlier attempts failed)\n";
    if List.length sol.Qspr.Mapper.attempts > 1 then begin
      Printf.printf "attempts          :\n";
      List.iter
        (fun (a : Qspr.Mapper.attempt) ->
          match a.Qspr.Mapper.outcome with
          | Ok l -> Printf.printf "  %-14s seed=%d  ok, %.1f us\n" a.Qspr.Mapper.stage a.Qspr.Mapper.seed l
          | Error e ->
              Printf.printf "  %-14s seed=%d  failed: %s\n" a.Qspr.Mapper.stage a.Qspr.Mapper.seed
                (Qspr.Mapper.error_to_string e))
        sol.Qspr.Mapper.attempts
    end;
    if validate then begin
      let policy =
        if placer = "quale" then (Qspr.Mapper.config ctx).Qspr.Config.quale_policy
        else (Qspr.Mapper.config ctx).Qspr.Config.qspr_policy
      in
      let report =
        Simulator.Validate.check ~graph:(Qspr.Mapper.graph ctx)
          ~timing:(Qspr.Mapper.config ctx).Qspr.Config.timing
          ~channel_capacity:policy.Simulator.Engine.channel_capacity
          ~junction_capacity:policy.Simulator.Engine.junction_capacity
          ~initial_placement:sol.Qspr.Mapper.initial_placement sol.Qspr.Mapper.trace
      in
      if report.Simulator.Validate.ok then Printf.printf "validation        : OK\n"
      else begin
        Printf.printf "validation        : FAILED\n";
        List.iter (Printf.printf "  %s\n") report.Simulator.Validate.errors
      end
    end;
    let* () =
      if not certify then Ok ()
      else begin
        let policy =
          if placer = "quale" then (Qspr.Mapper.config ctx).Qspr.Config.quale_policy
          else (Qspr.Mapper.config ctx).Qspr.Config.qspr_policy
        in
        let cert = Analysis.Certify.of_solution ~policy ctx sol in
        Format.printf "%a@." Analysis.Certify.pp cert;
        if cert.Analysis.Certify.valid then Ok ()
        else Error "trace certification failed: the reported solution is not physically executable"
      end
    in
    if show_trace then begin
      print_newline ();
      print_string (Simulator.Trace.to_string sol.Qspr.Mapper.trace)
    end;
    (match json_out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Qspr.Export.solution_string ~program sol));
        Printf.printf "json              : written to %s\n" path);
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1

let circuit_arg =
  Arg.(value & opt (some string) None & info [ "circuit" ] ~docv:"NAME" ~doc:"Builtin benchmark circuit.")

let qasm_arg = Arg.(value & opt (some string) None & info [ "qasm" ] ~docv:"FILE" ~doc:"QASM input file.")

let openqasm_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "openqasm" ] ~docv:"FILE" ~doc:"OpenQASM 2.0 input file (Clifford+T subset).")

let fabric_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fabric" ] ~docv:"FILE" ~doc:"ASCII fabric file (default: the paper's 45x85 grid).")

let pmd_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pmd" ] ~docv:"FILE" ~doc:"Physical machine description file (fabric + timing + capacities).")

let placer_arg =
  Arg.(
    value & opt string "mvfb"
    & info [ "placer" ] ~docv:"P"
        ~doc:
          "Placer: mvfb, mc, sa, portfolio (race mvfb/mc/sa/delta-SA across domains and keep \
           the best), center, quale, or robust (the retry cascade mvfb/reseed/mc/sa/relaxed).")

let budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the placement search; when it runs out the search returns \
           best-so-far marked degraded (default: QSPR_BUDGET, else off).")

let budget_evals_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-evals" ] ~docv:"N"
        ~doc:
          "Deterministic evaluation budget: at most $(docv) full engine evaluations per search \
           (default: QSPR_BUDGET_EVALS, else off).")

let prescreen_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "prescreen" ] ~docv:"K"
        ~doc:
          "Estimator pre-screening: score every candidate placement with the fast latency \
           estimator and fully route only the $(docv) best (0 disables; default: \
           QSPR_PRESCREEN, else off).")

let incremental_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "incremental" ] ~docv:"BOOL"
        ~doc:
          "Incremental routing stack: dirty-net Pathfinder negotiation and the cross-candidate \
           route cache.  Results are unchanged either way; false retains the legacy \
           full-reroute/uncached path for A/B timing (default: QSPR_INCREMENTAL, else true).")

let m_arg = Arg.(value & opt int 25 & info [ "m"; "seeds" ] ~docv:"M" ~doc:"MVFB seeds / MC runs (-m or --seeds).")

let sa_moves_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sa-moves" ] ~docv:"N"
        ~doc:
          "Delta-annealing move budget per stream: proposals scored by the incremental \
           estimator, with only improved incumbents routed (default: QSPR_SA_MOVES, else \
           20000).  Used by the portfolio placer's delta-SA streams.")
let seed_arg = Arg.(value & opt int 2012 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")
let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print the micro-command trace.")
let validate_arg = Arg.(value & flag & info [ "validate" ] ~doc:"Run the physical trace validator.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Replay the trace through the independent certifier (shares no code with the engine) \
           and fail if the claimed solution is not physically executable.")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the full result (trace included) as JSON.")

let map_cmd =
  Cmd.v
    (Cmd.info "map" ~doc:"Schedule, place and route a circuit onto an ion-trap fabric")
    Term.(
      const do_map $ circuit_arg $ qasm_arg $ openqasm_arg $ fabric_arg $ pmd_arg $ placer_arg $ m_arg
      $ sa_moves_arg $ seed_arg $ prescreen_arg $ budget_arg $ budget_evals_arg $ incremental_arg
      $ trace_arg $ validate_arg $ certify_arg $ json_arg)

(* --------------------------------------------------------------- fabric *)

let do_fabric fabric_path lint qubits =
  match load_fabric fabric_path with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok lay -> (
      match Fabric.Component.extract lay with
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          1
      | Ok comp ->
          Printf.printf "%dx%d fabric: %d junctions, %d channel segments, %d traps\n%s\n\n%s"
            (Fabric.Layout.height lay) (Fabric.Layout.width lay)
            (Array.length (Fabric.Component.junctions comp))
            (Array.length (Fabric.Component.segments comp))
            (Array.length (Fabric.Component.traps comp))
            Fabric.Render.legend (Fabric.Render.fabric lay);
          if lint then begin
            let findings = Fabric.Lint.check ?num_qubits:qubits lay in
            if findings = [] then print_endline "\nlint: clean"
            else begin
              print_newline ();
              List.iter (fun f -> Format.printf "lint %a@." Fabric.Lint.pp_finding f) findings
            end;
            if Fabric.Lint.is_clean ?num_qubits:qubits lay then 0 else 1
          end
          else 0)

let fabric_cmd =
  Cmd.v
    (Cmd.info "fabric" ~doc:"Render a fabric, its component statistics, and optional lint findings")
    Term.(
      const do_fabric $ fabric_arg
      $ Arg.(value & flag & info [ "lint" ] ~doc:"Run structural diagnostics.")
      $ Arg.(value & opt (some int) None & info [ "qubits" ] ~docv:"N" ~doc:"Intended qubit count for capacity lint."))

(* ----------------------------------------------------------------- flow *)

let do_flow circuit qasm openqasm fabric_path threshold =
  let ( let* ) = Result.bind in
  let result =
    let* program = load_program ~circuit ~qasm ~openqasm in
    let* fabric = load_fabric fabric_path in
    let* o = Qspr.Flow.run ~error_threshold:threshold ~fabric program in
    Printf.printf "synthesis optimization: %d gate(s) removed, %d remain\n" o.Qspr.Flow.gates_removed
      (Qasm.Program.gate_count o.Qspr.Flow.program);
    List.iter
      (fun (a : Qspr.Flow.attempt) ->
        Printf.printf "  m=%-4d latency %8.1f us   estimated error %.4f\n" a.Qspr.Flow.m
          a.Qspr.Flow.latency_us a.Qspr.Flow.error_probability)
      o.Qspr.Flow.attempts;
    Printf.printf "error threshold %.4f %s\n" threshold
      (if o.Qspr.Flow.met_threshold then "met" else "NOT met: re-synthesize with more encoding");
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1

let flow_cmd =
  Cmd.v
    (Cmd.info "flow" ~doc:"Run the full CAD loop: optimize, map with escalating effort, check the error threshold")
    Term.(
      const do_flow $ circuit_arg $ qasm_arg $ openqasm_arg $ fabric_arg
      $ Arg.(value & opt float 0.05 & info [ "threshold" ] ~docv:"E" ~doc:"Error-probability threshold."))

(* -------------------------------------------------------------- metrics *)

let do_metrics circuit qasm openqasm =
  match load_program ~circuit ~qasm ~openqasm with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok p ->
      Format.printf "%a@." Qasm.Metrics.pp (Qasm.Metrics.of_program p);
      0

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics" ~doc:"Static circuit metrics (depth, parallelism, interactions)")
    Term.(const do_metrics $ circuit_arg $ qasm_arg $ openqasm_arg)

(* ---------------------------------------------------------- gantt/heatmap *)

let map_for_viz circuit qasm openqasm fabric_path m seed =
  let ( let* ) = Result.bind in
  let* program = load_program ~circuit ~qasm ~openqasm in
  let* fabric = load_fabric fabric_path in
  let config = Qspr.Config.(default |> with_m m |> with_seed seed) in
  let* ctx = Qspr.Mapper.create ~fabric ~config program in
  let* sol = Result.map_error Qspr.Mapper.error_to_string (Qspr.Mapper.map_mvfb ctx) in
  Ok (program, ctx, sol)

let do_gantt circuit qasm openqasm fabric_path m seed =
  match map_for_viz circuit qasm openqasm fabric_path m seed with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok (program, _, sol) ->
      print_string
        (Simulator.Gantt.render ~num_qubits:(Qasm.Program.num_qubits program) sol.Qspr.Mapper.trace);
      0

let gantt_cmd =
  Cmd.v
    (Cmd.info "gantt" ~doc:"Per-qubit activity chart of a mapped circuit")
    Term.(const do_gantt $ circuit_arg $ qasm_arg $ openqasm_arg $ fabric_arg $ m_arg $ seed_arg)

let do_heatmap circuit qasm openqasm fabric_path m seed =
  match map_for_viz circuit qasm openqasm fabric_path m seed with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok (_, ctx, sol) ->
      print_string (Simulator.Heatmap.render (Qspr.Mapper.component ctx) sol.Qspr.Mapper.trace);
      0

let heatmap_cmd =
  Cmd.v
    (Cmd.info "heatmap" ~doc:"Channel-utilization heatmap of a mapped circuit")
    Term.(const do_heatmap $ circuit_arg $ qasm_arg $ openqasm_arg $ fabric_arg $ m_arg $ seed_arg)

(* ----------------------------------------------------------------- lint *)

let do_lint circuit qasm openqasm fabric_path pmd_path json_out =
  let prog_given = circuit <> None || qasm <> None || openqasm <> None in
  let fabric_given = fabric_path <> None || pmd_path <> None in
  if (not prog_given) && not fabric_given then begin
    Printf.eprintf
      "error: nothing to lint; give --circuit/--qasm/--openqasm and/or --fabric/--pmd\n";
    2
  end
  else if fabric_path <> None && pmd_path <> None then begin
    Printf.eprintf "error: give --fabric or --pmd, not both\n";
    2
  end
  else begin
    let program =
      if prog_given then Some (load_program_located ~circuit ~qasm ~openqasm) else None
    in
    let fabric, config =
      match pmd_path with
      | Some path -> (
          match Qspr.Pmd.parse_file path with
          | Ok pmd -> (Some (Ok pmd.Qspr.Pmd.layout), Qspr.Pmd.config pmd)
          | Error e -> (Some (Error e), Qspr.Config.default))
      | None ->
          ((if fabric_given then Some (load_fabric fabric_path) else None), Qspr.Config.default)
    in
    let findings = Analysis.Registry.lint ?program ?fabric ~config () in
    if json_out then
      print_endline (Ion_util.Json.to_string (Analysis.Finding.report_json findings))
    else print_string (Analysis.Registry.render findings);
    Analysis.Finding.exit_code findings
  end

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes on a circuit, a fabric, or both; exit 2 on errors, 1 \
          on warnings, 0 otherwise")
    Term.(
      const do_lint $ circuit_arg $ qasm_arg $ openqasm_arg $ fabric_arg $ pmd_arg
      $ Arg.(value & flag & info [ "json" ] ~doc:"Print the findings report as JSON."))

(* ---------------------------------------------------------------- audit *)

(* Map, then audit: recompute the admissible lower-bound catalog for the
   winning solution, cross-check the solution's own claim, optionally prove
   the instance optimal with the exact branch-and-bound, and exit like
   `qspr lint` (2 on errors, 1 on warnings, 0 otherwise — the gap itself is
   a hint).  Infeasible instances are refused with a typed finding before
   any placement search runs. *)
let do_audit circuit qasm openqasm fabric_path pmd_path placer m seed exact node_budget json_out =
  let emit_findings findings =
    if json_out then
      print_endline (Ion_util.Json.to_string (Analysis.Finding.report_json findings))
    else print_string (Analysis.Registry.render findings);
    Analysis.Finding.exit_code findings
  in
  match load_program_located ~circuit ~qasm ~openqasm with
  | Error e -> emit_findings (Analysis.Program_check.check_result (Error e))
  | Ok program -> (
      let resolved =
        let ( let* ) = Result.bind in
        match pmd_path with
        | Some path ->
            if fabric_path <> None then Error "give --fabric or --pmd, not both"
            else
              let* pmd = Qspr.Pmd.parse_file path in
              Ok (pmd.Qspr.Pmd.layout, Qspr.Pmd.config pmd)
        | None ->
            let* fabric = load_fabric fabric_path in
            Ok (fabric, Qspr.Config.default)
      in
      match resolved with
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          2
      | Ok (fabric, base_config) -> (
          let config = Qspr.Config.(base_config |> with_m m |> with_seed seed) in
          let dag = Qasm.Dag.of_program program in
          let num_traps =
            match Fabric.Component.extract fabric with
            | Ok comp -> Array.length (Fabric.Component.traps comp)
            | Error _ -> 0
          in
          match Estimator.Bound.infeasibility ~num_traps dag with
          | Some inf -> emit_findings [ Analysis.Bound.infeasibility_finding inf ]
          | None -> (
              let result =
                let ( let* ) = Result.bind in
                let* ctx = Qspr.Mapper.create ~fabric ~config program in
                let* sol =
                  Result.map_error Qspr.Mapper.error_to_string
                    (match placer with
                    | "mvfb" -> Qspr.Mapper.map_mvfb ctx
                    | "mc" -> Qspr.Mapper.map_monte_carlo ~runs:m ctx
                    | "sa" -> Qspr.Mapper.map_annealing ~evaluations:m ctx
                    | "portfolio" -> Qspr.Mapper.map_portfolio ~m ctx
                    | "center" -> Qspr.Mapper.map_center ctx
                    | "robust" -> Qspr.Mapper.map_robust ctx
                    | other ->
                        Error
                          (Qspr.Mapper.Invalid
                             (Printf.sprintf
                                "unknown placer %s (mvfb|mc|sa|portfolio|center|robust)" other)))
                in
                Ok (Analysis.Bound.audit ~exact ?node_budget ctx sol)
              in
              match result with
              | Error e ->
                  Printf.eprintf "error: %s\n" e;
                  2
              | Ok report ->
                  if json_out then
                    print_endline
                      (Ion_util.Json.to_string
                         (Analysis.Bound.to_json ~circuit:program.Qasm.Program.name ~placer
                            report))
                  else begin
                    Printf.printf "circuit            %s (%d qubits, %d gates), placer %s\n"
                      program.Qasm.Program.name
                      (Qasm.Program.num_qubits program)
                      (Qasm.Program.gate_count program)
                      placer;
                    print_string (Analysis.Bound.render report)
                  end;
                  Analysis.Finding.exit_code report.Analysis.Bound.findings)))

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Map a circuit, then certify an admissible latency lower bound and report the \
          optimality gap.  --exact additionally runs the small-instance exact optimizer and \
          can prove the mapping optimal.  Exit 2 on errors (bound violations, infeasible \
          instances), 1 on warnings, 0 otherwise")
    Term.(
      const do_audit $ circuit_arg $ qasm_arg $ openqasm_arg $ fabric_arg $ pmd_arg $ placer_arg
      $ m_arg $ seed_arg
      $ Arg.(
          value & flag
          & info [ "exact" ]
              ~doc:
                "Run the branch-and-bound exact optimizer (small instances only; skipped with a \
                 hint when the instance exceeds the guards).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "node-budget" ] ~docv:"N"
              ~doc:"Search-node budget for --exact (default 400000).")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Print the qspr-audit/1 report as JSON."))

(* ------------------------------------------------------------- estimate *)

(* Greedy delta-SA micro-benchmark: propose/score/commit-or-undo [n] moves
   on the incremental model and report moves/sec next to the full
   estimator's evals/sec — the quick hardware calibration behind choosing
   --sa-moves. *)
let delta_microbench ctx ~num_qubits ~placement n =
  let model = Qspr.Mapper.estimator_model ctx in
  let comp = Qspr.Mapper.component ctx in
  let num_traps = Array.length (Fabric.Component.traps comp) in
  let pool = Array.of_list (Placer.Center.center_traps comp (min (3 * num_qubits) num_traps)) in
  let rng = Ion_util.Rng.create 2012 in
  let delta = Estimator.Delta.create model placement in
  let tracker = Placer.Annealing.Proposal.create ~num_traps pool placement in
  let accepted = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    match Placer.Annealing.Proposal.draw tracker rng ~num_qubits with
    | Placer.Annealing.Proposal.Stay -> ()
    | Placer.Annealing.Proposal.Swap (i, j) ->
        if Estimator.Delta.apply_swap delta i j <= 0.0 then begin
          Estimator.Delta.commit delta;
          incr accepted
        end
        else Estimator.Delta.undo delta
    | Placer.Annealing.Proposal.Relocate (q, dst) ->
        let src = Estimator.Delta.trap_of delta q in
        if Estimator.Delta.apply_move delta q dst <= 0.0 then begin
          Estimator.Delta.commit delta;
          Placer.Annealing.Proposal.relocate tracker ~src ~dst;
          incr accepted
        end
        else Estimator.Delta.undo delta
  done;
  let dt = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  (* size the full-estimate reference so its window is long enough to time
     reliably even on the smallest circuits *)
  let k = max 1 (min 2000 n) in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to k do
    ignore (Estimator.Model.estimate model placement)
  done;
  let dt_full = Float.max 1e-9 (Unix.gettimeofday () -. t1) in
  let moves_s = float_of_int n /. dt and evals_s = float_of_int k /. dt_full in
  Printf.printf "delta moves       : %d in %.1f ms (%.0f moves/s, %d accepted, estimate %.1f us)\n"
    n (dt *. 1000.0) moves_s !accepted (Estimator.Delta.latency delta);
  Printf.printf "full estimates    : %d in %.1f ms (%.0f evals/s) — delta is %.0fx faster per proposal\n"
    k (dt_full *. 1000.0) evals_s (moves_s /. evals_s)

let do_estimate circuit qasm openqasm fabric_path moves measure certify =
  let ( let* ) = Result.bind in
  let result =
    let* program = load_program ~circuit ~qasm ~openqasm in
    let* fabric = load_fabric fabric_path in
    let* ctx = Qspr.Mapper.create ~fabric program in
    let placement =
      Placer.Center.place (Qspr.Mapper.component ctx)
        ~num_qubits:(Qasm.Program.num_qubits program)
    in
    let t0 = Sys.time () in
    let est = Qspr.Mapper.estimate ctx placement in
    let t_build = Sys.time () -. t0 in
    Printf.printf "circuit           : %s (%d qubits, %d gates)\n" program.Qasm.Program.name
      (Qasm.Program.num_qubits program) (Qasm.Program.gate_count program);
    Printf.printf "placement         : center\n";
    Printf.printf "estimated latency : %.1f us (model built + estimated in %.0f ms)\n" est
      (t_build *. 1000.0);
    let* () =
      match moves with
      | None -> Ok ()
      | Some n when n < 1 -> Error "--moves must be at least 1"
      | Some n ->
          Ok (delta_microbench ctx ~num_qubits:(Qasm.Program.num_qubits program) ~placement n)
    in
    if not (measure || certify) then Ok ()
    else
      let* r =
        Result.map_error Simulator.Engine.string_of_error (Qspr.Mapper.run_forward ctx placement)
      in
      let meas = r.Simulator.Engine.latency in
      Printf.printf "measured latency  : %.1f us (full schedule-and-route)\n" meas;
      Printf.printf "relative error    : %+.1f%%\n" (100.0 *. (est -. meas) /. meas);
      (* the measured run is the reference the estimator is judged against —
         always certify it, and fail loudly if the engine's own trace does
         not replay *)
      let config = Qspr.Mapper.config ctx in
      let policy = config.Qspr.Config.qspr_policy in
      let cert =
        Analysis.Certify.check
          ~layout:(Fabric.Component.layout (Qspr.Mapper.component ctx))
          ~timing:config.Qspr.Config.timing
          ~channel_capacity:policy.Simulator.Engine.channel_capacity
          ~junction_capacity:policy.Simulator.Engine.junction_capacity
          ~dag:(Qspr.Mapper.dag ctx) ~initial_placement:placement
          ~final_placement:r.Simulator.Engine.final_placement ~claimed_latency:meas
          r.Simulator.Engine.trace
      in
      Format.printf "%a@." Analysis.Certify.pp cert;
      if cert.Analysis.Certify.valid then Ok ()
      else Error "the measured reference trace failed certification: do not trust this estimate"
  in
  match result with
  | Ok () -> 0
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1

let estimate_cmd =
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Fast latency estimate of a circuit's center placement, optionally vs the measured engine")
    Term.(
      const do_estimate $ circuit_arg $ qasm_arg $ openqasm_arg $ fabric_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "moves" ] ~docv:"N"
              ~doc:
                "Micro-benchmark the incremental delta estimator: run $(docv) greedy delta-SA \
                 moves and print moves/sec next to the full estimator's evals/sec.")
      $ Arg.(value & flag & info [ "measure" ] ~doc:"Also run the full engine and report the relative error.")
      $ Arg.(value & flag & info [ "certify" ] ~doc:"Certify the measured reference trace (implies --measure)."))

(* ------------------------------------------------------------- circuits *)

let do_circuits show =
  match show with
  | None ->
      Printf.printf "builtin QECC benchmark circuits (paper Section V.A):\n";
      List.iter
        (fun (name, p) ->
          Printf.printf "  %-12s %2d qubits, %3d gates, ideal baseline %6.0f us\n" name
            (Qasm.Program.num_qubits p) (Qasm.Program.gate_count p)
            (Qspr.Baseline.latency Router.Timing.paper p))
        (Circuits.Qecc.all ());
      0
  | Some name -> (
      match List.assoc_opt name (Circuits.Qecc.all ()) with
      | Some p ->
          print_string (Qasm.Printer.to_string p);
          0
      | None ->
          Printf.eprintf "unknown circuit %s\n" name;
          1)

let circuits_cmd =
  Cmd.v
    (Cmd.info "circuits" ~doc:"List or print the builtin benchmark circuits")
    Term.(
      const do_circuits
      $ Arg.(value & opt (some string) None & info [ "show" ] ~docv:"NAME" ~doc:"Print one circuit as QASM."))

(* ---------------------------------------------------------------- serve *)

let request_rejection msg =
  {
    Service.Protocol.job_id = "?";
    verdict =
      Service.Protocol.Rejected { stage = "request"; reason = msg; quote_us = None; findings = [] };
    cache = None;
    cpu_s = 0.0;
    cached = false;
  }

let do_serve batch jobs deterministic max_pending max_quote_us max_evals shed_start max_fabrics
    response_cache response_ttl_s journal =
  let limits : Service.Scheduler.limits =
    {
      jobs;
      max_pending;
      max_quote_us;
      max_evals;
      shed_start;
      max_fabrics;
      response_cache;
      response_ttl_s;
    }
  in
  let t = Service.Scheduler.create ~limits () in
  match batch with
  | Some path -> (
      match In_channel.with_open_text path In_channel.input_lines with
      | exception Sys_error e ->
          Printf.eprintf "error: %s\n" e;
          1
      | lines ->
          let lines = Array.of_list (List.filter (fun l -> String.trim l <> "") lines) in
          let decoded = Array.map Service.Protocol.job_of_line lines in
          (* the journal's join key: the canonical encoding for well-formed
             requests (so reformatted-but-identical lines still match), the
             raw line for malformed ones *)
          let keys =
            Array.map2
              (fun line d ->
                match d with
                | Ok job -> Service.Journal.key (Service.Protocol.job_to_line job)
                | Error _ -> Service.Journal.key line)
              lines decoded
          in
          let n = Array.length lines in
          let replayed =
            match journal with Some p -> Service.Journal.replay p | None -> []
          in
          let mismatch =
            List.length replayed > n
            || List.exists2 (fun (e : Service.Journal.entry) k -> not (Int64.equal e.key k))
                 replayed
                 (Array.to_list (Array.sub keys 0 (List.length replayed)))
          in
          if mismatch then begin
            Printf.eprintf
              "error: journal %s does not match this batch input; refusing to resume\n"
              (Option.get journal);
            1
          end
          else begin
            (* replay the journaled prefix byte-for-byte, then resume at the
               first unjournaled request with the ladder slot counter the
               interrupted run had reached *)
            List.iter
              (fun (e : Service.Journal.entry) -> print_endline e.response_line)
              replayed;
            let replay_n = List.length replayed in
            let first_slot =
              List.length
                (List.filter (fun (e : Service.Journal.entry) -> Service.Journal.consumed_slot e.response) replayed)
            in
            let jnl = Option.map Service.Journal.open_append journal in
            let all = ref (List.rev_map (fun (e : Service.Journal.entry) -> e.response) replayed) in
            (* responses materialize out of input order (malformed lines
               instantly, mapped jobs per wave); emit and journal strictly in
               input order so a later resume replays a positional prefix *)
            let out : (Service.Protocol.response * string) option array =
              Array.make (n - replay_n) None
            in
            let next = ref 0 in
            let flush_ready () =
              while
                !next < Array.length out
                &&
                match out.(!next) with
                | Some (r, line) ->
                    print_endline line;
                    Option.iter
                      (fun j ->
                        Service.Journal.append j ~key:keys.(replay_n + !next) ~response_line:line)
                      jnl;
                    all := r :: !all;
                    true
                | None -> false
              do
                incr next
              done
            in
            let place i r =
              out.(i) <- Some (r, Service.Protocol.response_to_line ~deterministic r)
            in
            let job_positions = ref [] in
            let fresh_jobs = ref [] in
            for i = n - 1 downto replay_n do
              match decoded.(i) with
              | Error msg -> place (i - replay_n) (request_rejection msg)
              | Ok job ->
                  job_positions := (i - replay_n) :: !job_positions;
                  fresh_jobs := job :: !fresh_jobs
            done;
            let positions = ref !job_positions in
            flush_ready ();
            (* one run_batch over every well-formed request, so distance
               tables and warm route snapshots are shared across the file *)
            ignore
              (Service.Scheduler.run_batch ~first_slot
                 ~on_result:(fun _job r ->
                   (match !positions with
                   | p :: rest ->
                       positions := rest;
                       place p r
                   | [] -> assert false);
                   flush_ready ())
                 t !fresh_jobs);
            flush_ready ();
            Option.iter Service.Journal.close jnl;
            Service.Protocol.exit_code (List.rev !all)
          end)
  | None ->
      (* daemon mode: one request line in, one response line out, flushed
         per response so a pipe peer can interleave *)
      let rec loop () =
        match In_channel.input_line stdin with
        | None -> ()
        | Some line ->
            if String.trim line <> "" then begin
              print_endline (Service.Scheduler.handle_line ~deterministic t line);
              flush stdout
            end;
            loop ()
      in
      loop ();
      let s : Service.Scheduler.stats = Service.Scheduler.stats t in
      if s.rejected > 0 then 2 else if s.failed > 0 then 1 else 0

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Mapping as a service: read qspr-job/2 request lines (stdin, or a file with --batch), \
          admit each through the deadline, lint, quote and degradation-ladder tiers, map the \
          admitted ones over shared warm caches, and write one qspr-result/3 response line per \
          request.  Under overload the ladder degrades service (prescreened, budgeted, \
          estimate-only) before refusing; --journal makes an interrupted --batch resumable with \
          byte-identical replay.  Exits 2 if any request was rejected, 1 if any mapping failed, \
          0 otherwise.")
    Term.(
      const do_serve
      $ Arg.(
          value
          & opt (some string) None
          & info [ "batch" ] ~docv:"FILE"
              ~doc:
                "Read every request line from $(docv) and run them as one batch (distance \
                 tables and warm route caches amortized across the file) instead of serving \
                 stdin line by line.")
      $ Arg.(
          value & opt int 1
          & info [ "jobs" ] ~docv:"J"
              ~doc:"Jobs mapped concurrently (responses are bit-identical at any value).")
      $ Arg.(
          value & flag
          & info [ "deterministic" ]
              ~doc:
                "Omit the cache and cpu_s observability sections, leaving responses that are a \
                 pure function of their requests (the form CI compares against golden files).")
      $ Arg.(
          value & opt int 64
          & info [ "max-pending" ] ~docv:"N" ~doc:"Admitted jobs per submission before queue-full.")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "max-quote-us" ] ~docv:"US"
              ~doc:"Reject jobs whose estimator quote exceeds $(docv) microseconds.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-evals" ] ~docv:"N"
              ~doc:
                "Service-wide engine-evaluation ceiling: jobs requesting more are rejected, \
                 jobs requesting none inherit it as their budget.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "shed-start" ] ~docv:"SLOT"
              ~doc:
                "Admission slot where the degradation ladder begins shedding (default: half of \
                 --max-pending).")
      $ Arg.(
          value & opt int 8
          & info [ "max-fabrics" ] ~docv:"N"
              ~doc:
                "Warm-state registry capacity: beyond $(docv) distinct fabrics the \
                 least-recently-served one's shared tables are evicted.")
      $ Arg.(
          value & opt int 256
          & info [ "response-cache" ] ~docv:"N"
              ~doc:
                "Response cache capacity: identical repeated requests are answered from cache \
                 (0 disables).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "response-ttl-s" ] ~docv:"S"
              ~doc:"Expire cached responses after $(docv) seconds on the service clock.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "journal" ] ~docv:"FILE"
              ~doc:
                "Crash-only request journal for --batch: append every response line to $(docv) \
                 before emitting the next; rerunning the same batch replays the journaled \
                 prefix byte-for-byte and resumes mapping at the first unjournaled request."))

(* --------------------------------------------------------------- faults *)

let do_faults circuit qasm openqasm fabric_path seed levels_s trials jobs json_out =
  let ( let* ) = Result.bind in
  let result =
    let* program = load_program ~circuit ~qasm ~openqasm in
    let* fabric = load_fabric fabric_path in
    let* levels =
      try Ok (List.map (fun s -> int_of_string (String.trim s)) (String.split_on_char ',' levels_s))
      with Failure _ -> Error (Printf.sprintf "bad --levels %s (expected e.g. 0,1,2,4)" levels_s)
    in
    let* report = Fault.campaign ~jobs ~seed ~levels ~trials ~fabric program in
    Format.printf "@[<v>%a@]@." Fault.pp report;
    (match json_out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Ion_util.Json.to_string (Fault.to_json report)));
        Printf.printf "json written to %s\n" path);
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1

let faults_cmd =
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a fault-injection survivability campaign: sample fault sets at each level, degrade \
          the fabric, and map the circuit on every surviving fabric through the retry cascade")
    Term.(
      const do_faults $ circuit_arg $ qasm_arg $ openqasm_arg $ fabric_arg $ seed_arg
      $ Arg.(
          value & opt string "0,1,2,4"
          & info [ "levels" ] ~docv:"N,N,..." ~doc:"Comma-separated fault counts to sweep.")
      $ Arg.(value & opt int 5 & info [ "trials" ] ~docv:"T" ~doc:"Sampled fault sets per level.")
      $ Arg.(
          value & opt int 1
          & info [ "jobs" ] ~docv:"J" ~doc:"Trial-level parallelism (bit-identical at any value).")
      $ json_arg)

let () =
  let info = Cmd.info "qspr" ~version:"1.0.0" ~doc:"Latency-minimizing quantum mapper for ion-trap fabrics" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            map_cmd;
            serve_cmd;
            lint_cmd;
            audit_cmd;
            fabric_cmd;
            circuits_cmd;
            metrics_cmd;
            gantt_cmd;
            heatmap_cmd;
            flow_cmd;
            estimate_cmd;
            faults_cmd;
          ]))
