(* Map the paper's six QECC encoding-circuit benchmarks and compare the three
   heuristics (ideal baseline / QUALE / QSPR), i.e. a small-m preview of the
   paper's Table 2.

   Run with:  dune exec examples/qecc_mapping.exe *)

let () =
  Printf.printf "%-12s %10s %10s %10s %12s\n" "circuit" "baseline" "QUALE" "QSPR" "improvement";
  List.iter
    (fun (name, program) ->
      let fabric = Fabric.Layout.quale_45x85 () in
      let config = Qspr.Config.(default |> with_m 5) in
      let ctx =
        match Qspr.Mapper.create ~fabric ~config program with
        | Ok c -> c
        | Error e -> failwith e
      in
      let baseline = Qspr.Mapper.ideal_latency ctx in
      let quale =
        match Qspr.Quale_mode.map ctx with Ok s -> s.Qspr.Mapper.latency | Error e -> failwith (Qspr.Mapper.error_to_string e)
      in
      let qspr =
        match Qspr.Mapper.map_mvfb ctx with Ok s -> s.Qspr.Mapper.latency | Error e -> failwith (Qspr.Mapper.error_to_string e)
      in
      Printf.printf "%-12s %9.0fus %9.0fus %9.0fus %10.1f%%\n" name baseline quale qspr
        (Qspr.Report.improvement_pct ~quale ~qspr))
    (Circuits.Qecc.all ());
  print_newline ();
  (* every benchmark is a genuine reversible encoder: verify one of them with
     the stabilizer simulator (encode, then uncompute, back to |0...0>) *)
  let p = Circuits.Qecc.c913 () in
  let dag = Qasm.Dag.of_program p in
  let udag = match Qasm.Dag.reverse dag with Ok u -> u | Error e -> failwith e in
  let tableau = Quantum.Stabilizer.create (Qasm.Program.num_qubits p) in
  (match
     ( Quantum.Stabilizer.run_on p tableau,
       Quantum.Stabilizer.run_on (Qasm.Dag.program udag) tableau )
   with
  | Ok (), Ok () -> ()
  | Error e, _ | _, Error e -> failwith e);
  Printf.printf "stabilizer check: [[9,1,3]] encode;uncompute returns to |0...0>: %b\n"
    (Quantum.Stabilizer.is_zero_state tableau)
