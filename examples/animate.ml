(* Visualize a mapping: per-qubit Gantt chart of the schedule plus a
   flip-book of ion positions on the fabric over time.

   Run with:  dune exec examples/animate.exe *)

let () =
  let program = Circuits.Qecc.c513 () in
  let fabric = Fabric.Layout.quale_45x85 () in
  let ctx =
    match Qspr.Mapper.create ~fabric ~config:Qspr.Config.(default |> with_m 5) program with
    | Ok c -> c
    | Error e -> failwith e
  in
  let sol = match Qspr.Mapper.map_mvfb ctx with Ok s -> s | Error e -> failwith (Qspr.Mapper.error_to_string e) in
  let nq = Qasm.Program.num_qubits program in

  Printf.printf "%s mapped in %.0f us (ideal %.0f us)\n\n" program.Qasm.Program.name
    sol.Qspr.Mapper.latency (Qspr.Mapper.ideal_latency ctx);

  (* schedule at a glance *)
  print_string (Simulator.Gantt.render ~width:76 ~num_qubits:nq sol.Qspr.Mapper.trace);
  print_newline ();

  (* noise exposure breakdown per qubit *)
  let exposures = Noise.Exposure.of_trace ~num_qubits:nq sol.Qspr.Mapper.trace in
  Array.iter (fun e -> Format.printf "%a@." Noise.Exposure.pp e) exposures;
  Printf.printf "estimated success probability: %.4f\n\n"
    (Noise.Estimate.success_probability Noise.Model.default exposures);

  (* flip-book: ion positions at four instants, cropped to the center of the
     fabric where the action is *)
  let comp = Qspr.Mapper.component ctx in
  let traps = Fabric.Component.traps comp in
  let initial =
    Array.map (fun tid -> traps.(tid).Fabric.Component.tpos) sol.Qspr.Mapper.initial_placement
  in
  let replay = Simulator.Replay.create ~initial sol.Qspr.Mapper.trace in
  (* crop each frame to the bounding box of everywhere the ions ever are *)
  let all_positions =
    List.concat_map
      (fun f -> Array.to_list (Simulator.Replay.positions_at replay (f *. sol.Qspr.Mapper.latency /. 4.0)))
      [ 0.0; 1.0; 2.0; 3.0; 4.0 ]
  in
  let xs = List.map (fun (c : Ion_util.Coord.t) -> c.Ion_util.Coord.x) all_positions in
  let ys = List.map (fun (c : Ion_util.Coord.t) -> c.Ion_util.Coord.y) all_positions in
  let pad = 3 in
  let x0 = max 0 (List.fold_left min max_int xs - pad) in
  let x1 = min (Fabric.Layout.width fabric - 1) (List.fold_left max 0 xs + pad) in
  let y0 = max 0 (List.fold_left min max_int ys - pad) in
  let y1 = min (Fabric.Layout.height fabric - 1) (List.fold_left max 0 ys + pad) in
  let crop s =
    String.split_on_char '\n' s
    |> List.filteri (fun i _ -> i >= y0 && i <= y1)
    |> List.map (fun row -> if String.length row > x1 then String.sub row x0 (x1 - x0 + 1) else row)
    |> String.concat "\n"
  in
  List.iter
    (fun (time, frame) -> Printf.printf "t = %.0f us:\n%s\n\n" time (crop frame))
    (Simulator.Replay.frames ~steps:3 replay fabric);
  let dist = Simulator.Replay.distance_traveled replay in
  Array.iteri (fun q d -> Printf.printf "qubit %d traveled %d cells\n" q d) dist
