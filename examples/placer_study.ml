(* Placement-quality study: how the MVFB and Monte-Carlo placers trade
   latency against search effort (the paper's Table 1 / Section IV.A
   sensitivity analysis, on one circuit).

   Run with:  dune exec examples/placer_study.exe *)

let () =
  let circuit = "[[9,1,3]]" in
  let program = List.assoc circuit (Circuits.Qecc.all ()) in
  let fabric = Fabric.Layout.quale_45x85 () in
  Printf.printf "circuit %s on the 45x85 fabric; paper timing parameters\n\n" circuit;
  Printf.printf "%6s %12s %12s %14s %12s\n" "m" "MVFB (us)" "MVFB runs" "MC same runs" "MC (us)";
  List.iter
    (fun m ->
      let config = Qspr.Config.(default |> with_m m) in
      let ctx =
        match Qspr.Mapper.create ~fabric ~config program with
        | Ok c -> c
        | Error e -> failwith e
      in
      let mvfb = match Qspr.Mapper.map_mvfb ctx with Ok s -> s | Error e -> failwith (Qspr.Mapper.error_to_string e) in
      let mc =
        match Qspr.Mapper.map_monte_carlo ~runs:mvfb.Qspr.Mapper.placement_runs ctx with
        | Ok s -> s
        | Error e -> failwith (Qspr.Mapper.error_to_string e)
      in
      Printf.printf "%6d %12.0f %12d %14d %12.0f\n" m mvfb.Qspr.Mapper.latency
        mvfb.Qspr.Mapper.placement_runs mc.Qspr.Mapper.placement_runs mc.Qspr.Mapper.latency)
    [ 1; 2; 5; 10; 25 ];
  print_newline ();
  (* distribution of run latencies within one MVFB search: the local
     neighborhood search visibly improves over its own starting points *)
  let config = Qspr.Config.(default |> with_m 5) in
  let ctx =
    match Qspr.Mapper.create ~fabric ~config program with Ok c -> c | Error e -> failwith e
  in
  let sol = match Qspr.Mapper.map_mvfb ctx with Ok s -> s | Error e -> failwith (Qspr.Mapper.error_to_string e) in
  let lats = sol.Qspr.Mapper.run_latencies in
  let best = List.fold_left Float.min Float.infinity lats in
  let worst = List.fold_left Float.max 0.0 lats in
  Printf.printf "within MVFB (m=5): %d runs, best %.0f us, worst %.0f us, mean %.0f us\n"
    (List.length lats) best worst
    (Ion_util.Stats.mean lats);
  Printf.printf "winning direction: %s\n"
    (match sol.Qspr.Mapper.direction with
    | Placer.Mvfb.Forward -> "forward (QIDG order)"
    | Placer.Mvfb.Backward -> "backward (UIDG order, trace reversed)")
