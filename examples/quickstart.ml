(* Quickstart: map a QASM program onto the paper's 45x85 ion-trap fabric.

   Run with:  dune exec examples/quickstart.exe *)

let qasm_source =
  {|# a 3-qubit GHZ-style preparation
QUBIT a,0
QUBIT b,0
QUBIT c,0
H a
C-X a,b
C-X b,c
|}

let () =
  (* 1. parse the QASM text *)
  let program =
    match Qasm.Parser.parse ~name:"ghz3" qasm_source with
    | Ok p -> p
    | Error e -> failwith ("parse error: " ^ e)
  in
  Printf.printf "parsed %S: %d qubits, %d gates\n" program.Qasm.Program.name
    (Qasm.Program.num_qubits program)
    (Qasm.Program.gate_count program);

  (* 2. build a mapping context on the paper's fabric (Figure 4) *)
  let fabric = Fabric.Layout.quale_45x85 () in
  let config = Qspr.Config.(default |> with_m 10 |> with_seed 7) in
  let ctx =
    match Qspr.Mapper.create ~fabric ~config program with
    | Ok c -> c
    | Error e -> failwith e
  in

  (* 3. the ideal lower bound: critical path with zero routing cost *)
  Printf.printf "ideal baseline latency: %.0f us\n" (Qspr.Mapper.ideal_latency ctx);

  (* 4. run the full QSPR flow (MVFB placement, turn-aware routing) *)
  let sol =
    match Qspr.Mapper.map_mvfb ctx with Ok s -> s | Error e -> failwith (Qspr.Mapper.error_to_string e)
  in
  Printf.printf "QSPR mapped latency   : %.0f us (after %d placement runs)\n" sol.Qspr.Mapper.latency
    sol.Qspr.Mapper.placement_runs;

  (* 5. inspect the micro-command trace the controller would execute *)
  Printf.printf "\nmicro-command trace (%d moves, %d turns, %d gates):\n%s"
    (Simulator.Trace.move_count sol.Qspr.Mapper.trace)
    (Simulator.Trace.turn_count sol.Qspr.Mapper.trace)
    (Simulator.Trace.gate_count sol.Qspr.Mapper.trace)
    (Simulator.Trace.to_string sol.Qspr.Mapper.trace);

  (* 6. independently validate the trace against the physical rules *)
  let report =
    Simulator.Validate.check ~graph:(Qspr.Mapper.graph ctx) ~timing:Router.Timing.paper
      ~channel_capacity:2 ~junction_capacity:2 ~initial_placement:sol.Qspr.Mapper.initial_placement
      sol.Qspr.Mapper.trace
  in
  Printf.printf "\ntrace validation: %s\n" (if report.Simulator.Validate.ok then "OK" else "FAILED")
