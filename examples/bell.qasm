# Bell pair: the smallest interesting mapping workload.
#   qspr map --qasm examples/bell.qasm --fabric-linear 4
#   qspr lint --qasm examples/bell.qasm
QUBIT a,0
QUBIT b,0
H a
C-X a,b
MeasZ a
MeasZ b
