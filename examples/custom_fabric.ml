(* Define your own ion-trap fabric as ASCII art, map a circuit onto it, and
   visualize the placement and a route.

   Fabric format: J = junction, - / | (or C) = channel, T = trap, space =
   empty.  Traps must touch a channel or junction.

   Run with:  dune exec examples/custom_fabric.exe *)

let fabric_art =
  {|  |     |     |
  J-----J-----J
  |  T  |  T  |
  |     |     |
  |  T  |  T  |
  J-----J-----J
  |     |     |
|}

let circuit =
  {|QUBIT x,0
QUBIT y,0
QUBIT z,0
H x
C-X x,y
C-Z y,z
C-Y x,z
|}

let () =
  let fabric =
    match Fabric.Layout.parse fabric_art with Ok l -> l | Error e -> failwith ("fabric: " ^ e)
  in
  let comp =
    match Fabric.Component.extract fabric with Ok c -> c | Error e -> failwith ("extract: " ^ e)
  in
  Printf.printf "custom fabric: %d junctions, %d channel segments, %d traps\n\n"
    (Array.length (Fabric.Component.junctions comp))
    (Array.length (Fabric.Component.segments comp))
    (Array.length (Fabric.Component.traps comp));

  let program =
    match Qasm.Parser.parse ~name:"demo" circuit with Ok p -> p | Error e -> failwith e
  in
  let ctx =
    match Qspr.Mapper.create ~fabric ~config:Qspr.Config.(default |> with_m 4) program with
    | Ok c -> c
    | Error e -> failwith e
  in
  let sol = match Qspr.Mapper.map_mvfb ctx with Ok s -> s | Error e -> failwith (Qspr.Mapper.error_to_string e) in

  (* initial placement rendered on the fabric *)
  let traps = Fabric.Component.traps comp in
  let qubit_marks =
    Array.to_list
      (Array.mapi (fun q tid -> (q, traps.(tid).Fabric.Component.tpos)) sol.Qspr.Mapper.initial_placement)
  in
  Printf.printf "initial placement (digits are qubit indices):\n%s\n"
    (Fabric.Render.with_qubits fabric qubit_marks);
  Printf.printf "mapped latency: %.0f us (ideal baseline %.0f us)\n\n" sol.Qspr.Mapper.latency
    (Qspr.Mapper.ideal_latency ctx);

  (* route qubit 0's journey: filter its movement commands from the trace *)
  let moves = Simulator.Trace.qubit_commands sol.Qspr.Mapper.trace 0 in
  let cells =
    List.filter_map
      (function Router.Micro.Move { to_; _ } -> Some to_ | _ -> None)
      moves
  in
  (match sol.Qspr.Mapper.initial_placement.(0) with
  | tid ->
      let start = traps.(tid).Fabric.Component.tpos in
      Printf.printf "qubit 0's route over the whole computation:\n%s\n"
        (Fabric.Render.path fabric (start :: cells)));
  Printf.printf "%s\n" Fabric.Render.legend
